// Differential tests for distributed region links: a connector split
// across two coordinator instances joined by the TCP transport over
// loopback must deliver exactly the per-port value sequences — and fire
// exactly the global steps — of the in-process PartitionRegions run.
package reo_test

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	reo "repro"
	"repro/internal/ca"
)

// remotePair is a connector instance split across two in-process nodes
// ("a" and "b") joined over 127.0.0.1, plus the port-ownership map the
// driver needs to pick the hosting instance for each boundary port.
type remotePair struct {
	a, b *reo.Instance
	// node maps "param/index" to "a" or "b"; region maps it to the
	// plan region index executing the port (for per-region counters).
	node   map[string]string
	region map[string]int
	// wireLinks counts plan links whose endpoints landed on different
	// nodes — the number of region links actually carried over TCP.
	wireLinks int
}

func (rp *remotePair) inst(param string, idx int) *reo.Instance {
	if rp.node[fmt.Sprintf("%s/%d", param, idx)] == "b" {
		return rp.b
	}
	return rp.a
}

func (rp *remotePair) close() {
	rp.a.Close()
	rp.b.Close()
}

func (rp *remotePair) steps() int64      { return rp.a.Steps() + rp.b.Steps() }
func (rp *remotePair) guardEvals() int64 { return rp.a.GuardEvals() + rp.b.GuardEvals() }

// connectRemotePair splits the connector's region plan across two
// loopback nodes — alternating regions by index, so every other link is
// cut — and connects both halves concurrently (the handshake needs both
// sides up).
func connectRemotePair(t *testing.T, prog *reo.Program, name string, lengths map[string]int, opts ...reo.ConnectOption) *remotePair {
	t.Helper()
	conn := prog.MustConnector(name)
	asm, err := conn.Template().Instantiate(lengths)
	if err != nil {
		t.Fatal(err)
	}
	plan := ca.PlanRegions(asm.U, asm.Auts)
	nr := len(plan.Regions)
	if nr < 2 {
		t.Fatalf("connector %s plans %d regions; need at least 2 to distribute", name, nr)
	}
	regions := map[string][]int{}
	regionNode := make([]string, nr)
	for ri := 0; ri < nr; ri++ {
		n := "a"
		if ri%2 == 1 {
			n = "b"
		}
		regions[n] = append(regions[n], ri)
		regionNode[ri] = n
	}

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]string{"a": lnA.Addr().String(), "b": lnB.Addr().String()}

	connect := func(node string, ln net.Listener) (*reo.Instance, error) {
		topo := &reo.RemoteTopology{
			Node: node, Nodes: nodes, Regions: regions,
			Listener: ln, DialTimeout: 5 * time.Second,
		}
		all := append([]reo.ConnectOption{
			reo.WithPartitioning(reo.PartitionRegions),
			reo.WithRemoteRegions(topo),
		}, opts...)
		return conn.Connect(lengths, all...)
	}
	var instA, instB *reo.Instance
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); instA, errA = connect("a", lnA) }()
	go func() { defer wg.Done(); instB, errB = connect("b", lnB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("connect a: %v, b: %v", errA, errB)
	}
	t.Cleanup(func() { instA.Close(); instB.Close() })

	owner := plan.PortRegions(asm.U, asm.Auts)
	pair := &remotePair{a: instA, b: instB, node: map[string]string{}, region: map[string]int{}}
	for _, lk := range plan.Links {
		if regionNode[lk.From] != regionNode[lk.To] {
			pair.wireLinks++
		}
	}
	for param, ports := range asm.Tails {
		for i, p := range ports {
			key := fmt.Sprintf("%s/%d", param, i)
			pair.node[key] = regionNode[owner[p]]
			pair.region[key] = owner[p]
		}
	}
	for param, ports := range asm.Heads {
		for i, p := range ports {
			key := fmt.Sprintf("%s/%d", param, i)
			pair.node[key] = regionNode[owner[p]]
			pair.region[key] = owner[p]
		}
	}
	return pair
}

// drivePipelineRemote runs the pipelineProto workload against a split
// pair, each port driven on its hosting instance; batch <= 1 uses the
// scalar entry points, larger batches the batched ones (ragged tail
// included).
func drivePipelineRemote(t *testing.T, pair *remotePair, n, items, batch int) (sink []any, stages [][]any) {
	t.Helper()
	stages = make([][]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := pair.inst("in", i).Inports("in")[i]
			out := pair.inst("out", i).Outports("out")[i]
			if batch <= 1 {
				for k := 0; k < items; k++ {
					v, err := in.Recv()
					if err != nil {
						t.Errorf("stage %d recv: %v", i, err)
						return
					}
					stages[i] = append(stages[i], v)
					if err := out.Send(v.(int)*10 + i); err != nil {
						t.Errorf("stage %d send: %v", i, err)
						return
					}
				}
				return
			}
			buf := make([]any, batch)
			for done := 0; done < items; {
				k := batch
				if items-done < k {
					k = items - done
				}
				got, err := in.RecvBatch(buf[:k])
				if err != nil {
					t.Errorf("stage %d recv: %v", i, err)
					return
				}
				stages[i] = append(stages[i], buf[:got]...)
				for j := 0; j < got; j++ {
					buf[j] = buf[j].(int)*10 + i
				}
				if err := out.SendBatch(buf[:got]); err != nil {
					t.Errorf("stage %d send: %v", i, err)
					return
				}
				done += got
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := pair.inst("src", 0).Outport("src")
		if batch <= 1 {
			for k := 1; k <= items; k++ {
				if err := src.Send(k); err != nil {
					t.Errorf("src send: %v", err)
					return
				}
			}
			return
		}
		buf := make([]any, batch)
		for k := 1; k <= items; {
			m := 0
			for ; m < batch && k+m <= items; m++ {
				buf[m] = k + m
			}
			if err := src.SendBatch(buf[:m]); err != nil {
				t.Errorf("src send: %v", err)
				return
			}
			k += m
		}
	}()
	snk := pair.inst("snk", 0).Inport("snk")
	if batch <= 1 {
		for k := 0; k < items; k++ {
			v, err := snk.Recv()
			if err != nil {
				t.Fatal(err)
			}
			sink = append(sink, v)
		}
	} else {
		buf := make([]any, batch)
		for len(sink) < items {
			k := batch
			if items-len(sink) < k {
				k = items - len(sink)
			}
			got, err := snk.RecvBatch(buf[:k])
			if err != nil {
				t.Fatal(err)
			}
			sink = append(sink, buf[:got]...)
		}
	}
	wg.Wait()
	return sink, stages
}

// runPipelineStats is runPipeline capturing the instance counters
// before Close (the reference side of the differential).
func runPipelineStats(t *testing.T, n, items, batch int, opts ...reo.ConnectOption) (sink []any, stages [][]any, steps, guardEvals int64) {
	t.Helper()
	prog := reo.MustCompile(pipelineProto)
	conn := prog.MustConnector("Pipeline")
	inst, err := conn.Connect(map[string]int{"out": n, "in": n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	stages = make([][]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("in")[i]
			out := inst.Outports("out")[i]
			for k := 0; k < items; k++ {
				v, err := in.Recv()
				if err != nil {
					t.Errorf("stage %d recv: %v", i, err)
					return
				}
				stages[i] = append(stages[i], v)
				if err := out.Send(v.(int)*10 + i); err != nil {
					t.Errorf("stage %d send: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := inst.Outport("src")
		for k := 1; k <= items; k++ {
			if err := src.Send(k); err != nil {
				t.Errorf("src send: %v", err)
				return
			}
		}
	}()
	snk := inst.Inport("snk")
	for k := 0; k < items; k++ {
		v, err := snk.Recv()
		if err != nil {
			t.Fatal(err)
		}
		sink = append(sink, v)
	}
	wg.Wait()
	_ = batch
	return sink, stages, inst.Steps(), inst.GuardEvals()
}

// altProto is the alternator shape: the drain chain fires every in-lane
// atomically, and the Seq-gated merger then emits the lane values in
// index order. The output sequence is fully deterministic — independent
// of arrival timing — and every lane's Fifo1 is a cut buffer, so each
// value crosses a region link on its way to the merge side.
const altProto = `
Alternator(in[];out) =
    prod (i:1..#in) Fifo1(in[i];f[i])
    mult prod (i:1..#in-1) SyncDrain(in[i],in[i+1];)
    mult Merger(f[1..#in];out)
    mult Seq(f[1..#in];)
`

// mergeProto is the late async merger: one Fifo1 between the merger
// region and the out node region — exactly one cut link.
const mergeProto = `
AsyncMerger(in[];out) = Merger(in[1..#in];m) mult Fifo1(m;out)
`

// seqProto is the token-ring sequencer: one drain region per client,
// joined in a ring of cut Fifo1 links — one of them a Fifo1Full whose
// seeded token must materialize on exactly one side of the wire.
const seqProto = `
Sequencer(c[];) =
    prod (i:1..#c-1) Fifo1(r[i];r[i+1])
    mult Fifo1Full(r[#c];r[1])
    mult prod (i:1..#c) SyncDrain(c[i],r[i];)
`

// laneValue is the value lane i (0-based) sends in round k.
func laneValue(i, k int) int { return (i+1)*100 + k }

// driveAlternator pushes items rounds through an n-lane alternator,
// each port driven via get (which picks the hosting instance), and
// returns the out sequence. batch <= 1 drives the scalar entry points;
// larger batches use SendBatch/RecvBatch with a ragged tail.
func driveAlternator(t *testing.T, get func(param string, idx int) *reo.Instance, n, items, batch int) []any {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := get("in", i).Outports("in")[i]
			if batch <= 1 {
				for k := 1; k <= items; k++ {
					if err := lane.Send(laneValue(i, k)); err != nil {
						t.Errorf("lane %d send: %v", i, err)
						return
					}
				}
				return
			}
			buf := make([]any, batch)
			for k := 1; k <= items; {
				m := 0
				for ; m < batch && k+m <= items; m++ {
					buf[m] = laneValue(i, k+m)
				}
				if err := lane.SendBatch(buf[:m]); err != nil {
					t.Errorf("lane %d send: %v", i, err)
					return
				}
				k += m
			}
		}(i)
	}
	out := get("out", 0).Inport("out")
	var got []any
	total := n * items
	if batch <= 1 {
		for len(got) < total {
			v, err := out.Recv()
			if err != nil {
				t.Fatalf("out recv: %v", err)
			}
			got = append(got, v)
		}
	} else {
		buf := make([]any, batch)
		for len(got) < total {
			k := batch
			if total-len(got) < k {
				k = total - len(got)
			}
			m, err := out.RecvBatch(buf[:k])
			if err != nil {
				t.Fatalf("out recv: %v", err)
			}
			got = append(got, buf[:m]...)
		}
	}
	wg.Wait()
	return got
}

// alternatorExpect is the analytically known output: rounds in order,
// lanes in index order within each round.
func alternatorExpect(n, items int) []any {
	var want []any
	for k := 1; k <= items; k++ {
		for i := 0; i < n; i++ {
			want = append(want, laneValue(i, k))
		}
	}
	return want
}

// runAlternatorLocal is the single-process reference run, capturing the
// counters before Close.
func runAlternatorLocal(t *testing.T, n, items int, opts ...reo.ConnectOption) (out []any, steps int64) {
	t.Helper()
	prog := reo.MustCompile(altProto)
	inst, err := prog.MustConnector("Alternator").Connect(map[string]int{"in": n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	out = driveAlternator(t, func(string, int) *reo.Instance { return inst }, n, items, 0)
	return out, settleSteps(inst.Steps)
}

// settleSteps polls a step counter until it stops moving: post-delivery
// link housekeeping (trailing pops, acks) may still fire after the last
// boundary op returns, on either side of the differential.
func settleSteps(steps func() int64) int64 {
	prev := steps()
	for quiet, spins := 0, 0; quiet < 10 && spins < 2000; spins++ {
		time.Sleep(time.Millisecond)
		if s := steps(); s != prev {
			prev, quiet = s, 0
		} else {
			quiet++
		}
	}
	return prev
}

// waitSteps polls the pair until its step total reaches want, then
// confirms it does not overshoot.
func waitSteps(t *testing.T, pair *remotePair, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pair.steps() < want {
		time.Sleep(time.Millisecond)
	}
	if got := settleSteps(pair.steps); got != want {
		t.Errorf("steps = %d (a=%d b=%d), want %d", got, pair.a.Steps(), pair.b.Steps(), want)
	}
}

// TestRemoteLoopbackDifferential is the tentpole differential: an
// alternator split so that every lane's buffer is a TCP region link
// must deliver exactly the deterministic round-robin output sequence
// and fire exactly the Steps of the in-process PartitionRegions run.
func TestRemoteLoopbackDifferential(t *testing.T) {
	const n, items = 4, 24
	wantOut, wantSteps := runAlternatorLocal(t, n, items,
		reo.WithPartitioning(reo.PartitionRegions), reo.WithSeed(7))

	prog := reo.MustCompile(altProto)
	pair := connectRemotePair(t, prog, "Alternator", map[string]int{"in": n}, reo.WithSeed(7))
	if pair.wireLinks != n {
		t.Fatalf("split cut %d cross-node links, want %d — differential would be vacuous", pair.wireLinks, n)
	}
	out := driveAlternator(t, pair.inst, n, items, 0)

	if want := alternatorExpect(n, items); !reflect.DeepEqual(out, want) {
		t.Errorf("out sequence diverged from round-robin:\n remote %v\n want   %v\n%s", out, want, reproCmd(t, 7))
	}
	if !reflect.DeepEqual(out, wantOut) {
		t.Errorf("out sequence diverged from local run:\n remote %v\n local  %v\n%s", out, wantOut, reproCmd(t, 7))
	}
	waitSteps(t, pair, wantSteps)
}

// TestRemoteLoopbackBatched pins the batched entry points across the
// wire, ragged tails included: burst framing must not reorder, drop, or
// duplicate, and the step total must still match the in-process run.
func TestRemoteLoopbackBatched(t *testing.T) {
	const n, items = 2, 30
	for _, batch := range []int{3, 8} {
		batch := batch
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			wantOut, wantSteps := runAlternatorLocal(t, n, items,
				reo.WithPartitioning(reo.PartitionRegions), reo.WithSeed(3))

			prog := reo.MustCompile(altProto)
			pair := connectRemotePair(t, prog, "Alternator", map[string]int{"in": n}, reo.WithSeed(3))
			out := driveAlternator(t, pair.inst, n, items, batch)

			if !reflect.DeepEqual(out, wantOut) {
				t.Errorf("out sequence diverged:\n remote %v\n local  %v\n%s", out, wantOut, reproCmd(t, 7))
			}
			waitSteps(t, pair, wantSteps)
		})
	}
}

// driveSequencer runs rounds grant cycles against a sequencer: n client
// goroutines each complete rounds sends, self-ordered by the ring.
func driveSequencer(t *testing.T, get func(param string, idx int) *reo.Instance, n, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := get("c", i).Outports("c")[i]
			for k := 0; k < rounds; k++ {
				if err := c.Send(k); err != nil {
					t.Errorf("client %d send %d: %v", i, k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestRemoteLoopbackRuntime splits a token-ring sequencer — every ring
// hop a TCP link, one of them a seeded Fifo1Full — across two nodes
// sharing a scheduler runtime: network reads must wake the scheduler,
// not fire inline, the token must materialize on exactly one side, and
// the step total must match the in-process run.
func TestRemoteLoopbackRuntime(t *testing.T) {
	const n, rounds = 4, 12
	prog := reo.MustCompile(seqProto)
	ref, err := prog.MustConnector("Sequencer").Connect(map[string]int{"c": n},
		reo.WithPartitioning(reo.PartitionRegions), reo.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	driveSequencer(t, func(string, int) *reo.Instance { return ref }, n, rounds)
	wantSteps := settleSteps(ref.Steps)
	ref.Close()

	pair := connectRemotePair(t, prog, "Sequencer", map[string]int{"c": n},
		reo.WithSeed(5), reo.WithRuntime(nil))
	if pair.wireLinks != n {
		t.Fatalf("ring cut %d cross-node links, want %d", pair.wireLinks, n)
	}
	driveSequencer(t, pair.inst, n, rounds)
	waitSteps(t, pair, wantSteps)
}

// TestRemoteDisconnectedComponents covers the degenerate split: the
// pipeline's regions are disconnected components (no cut links at all),
// so the two nodes never open a connection, yet placement, port routing
// and the per-port contract must be exactly the in-process run's —
// including GuardEvals, which is deterministic here because each region
// sees a single sequential op stream.
func TestRemoteDisconnectedComponents(t *testing.T) {
	const n, items = 3, 60
	wantSink, wantStages, wantSteps, wantGuards := runPipelineStats(t, n, items, 0,
		reo.WithPartitioning(reo.PartitionRegions), reo.WithSeed(7))

	prog := reo.MustCompile(pipelineProto)
	pair := connectRemotePair(t, prog, "Pipeline", map[string]int{"out": n, "in": n}, reo.WithSeed(7))
	if pair.wireLinks != 0 {
		t.Fatalf("pipeline split cut %d links, want 0 (disconnected components)", pair.wireLinks)
	}
	sink, stages := drivePipelineRemote(t, pair, n, items, 0)

	if !reflect.DeepEqual(sink, wantSink) {
		t.Errorf("sink sequence diverged:\n remote %v\n local  %v", sink, wantSink)
	}
	for i := range stages {
		if !reflect.DeepEqual(stages[i], wantStages[i]) {
			t.Errorf("stage %d input sequence diverged:\n remote %v\n local  %v", i, stages[i], wantStages[i])
		}
	}
	if steps := pair.steps(); steps != wantSteps {
		t.Errorf("steps = %d (a=%d b=%d), want %d", steps, pair.a.Steps(), pair.b.Steps(), wantSteps)
	}
	if guards := pair.guardEvals(); guards != wantGuards {
		t.Errorf("guardEvals = %d, want %d", guards, wantGuards)
	}
}

// TestRemoteRecvBatchPartialOnClose pins the batched mid-close
// contract across the wire: a RecvBatch outstanding when the peer node
// closes must return the values already delivered (count < len(buf))
// with the close error, exactly like an in-process close.
func TestRemoteRecvBatchPartialOnClose(t *testing.T) {
	const sent = 3
	prog := reo.MustCompile(mergeProto)
	pair := connectRemotePair(t, prog, "AsyncMerger", map[string]int{"in": 2}, reo.WithSeed(1))
	if pair.wireLinks != 1 {
		t.Fatalf("merger split cut %d links, want 1", pair.wireLinks)
	}

	outInst := pair.inst("out", 0)
	otherInst := pair.a
	if otherInst == outInst {
		otherInst = pair.b
	}
	got := make(chan struct {
		n   int
		err error
	}, 1)
	buf := make([]any, sent+2)
	go func() {
		n, err := outInst.Inport("out").RecvBatch(buf)
		got <- struct {
			n   int
			err error
		}{n, err}
	}()

	// The cut Fifo1 has capacity 1, so each Send completes only after
	// the previous value left the link into the outstanding batch.
	in := pair.inst("in", 0).Outports("in")[0]
	for k := 1; k <= sent; k++ {
		if err := in.Send(k); err != nil {
			t.Fatalf("send %d: %v", k, err)
		}
	}

	// Wait until all values have crossed the wire into the batch — the
	// out node region fires once per delivered value — then close the
	// peer: the close must propagate and release the partial batch.
	outRegion := pair.region["out/0"]
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if outInst.Regions()[outRegion].Steps >= int64(sent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	otherInst.Close()

	select {
	case r := <-got:
		if r.n != sent {
			t.Errorf("RecvBatch returned %d values, want %d", r.n, sent)
		}
		if r.err == nil {
			t.Error("RecvBatch returned nil error on close")
		}
		for i := 0; i < r.n; i++ {
			if buf[i] != i+1 {
				t.Errorf("buf[%d] = %v, want %d", i, buf[i], i+1)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RecvBatch did not return after peer close")
	}
	pair.close()
}

// TestRemotePortOnWrongNode pins the routing error: driving a port
// whose region lives on the other node fails loudly instead of
// hanging.
func TestRemotePortOnWrongNode(t *testing.T) {
	prog := reo.MustCompile(mergeProto)
	pair := connectRemotePair(t, prog, "AsyncMerger", map[string]int{"in": 2}, reo.WithSeed(1))
	outInst := pair.inst("out", 0)
	wrong := pair.a
	if wrong == outInst {
		wrong = pair.b
	}
	_, err := wrong.Inport("out").Recv()
	if err == nil || !strings.Contains(err.Error(), "remote region") {
		t.Errorf("recv on remote-hosted port: err %v, want remote-region routing error", err)
	}
	pair.close()
}

// TestRemoteIdentityMismatch pins the handshake guard: two nodes built
// from different seeds are different runs, and the connection must be
// refused before any data moves.
func TestRemoteIdentityMismatch(t *testing.T) {
	prog := reo.MustCompile(mergeProto)
	conn := prog.MustConnector("AsyncMerger")
	lengths := map[string]int{"in": 2}
	asm, err := conn.Template().Instantiate(lengths)
	if err != nil {
		t.Fatal(err)
	}
	plan := ca.PlanRegions(asm.U, asm.Auts)
	regions := map[string][]int{}
	for ri := 0; ri < len(plan.Regions); ri++ {
		node := "a"
		if ri%2 == 1 {
			node = "b"
		}
		regions[node] = append(regions[node], ri)
	}
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	nodes := map[string]string{"a": lnA.Addr().String(), "b": lnB.Addr().String()}
	mk := func(node string, ln net.Listener, seed int64) error {
		topo := &reo.RemoteTopology{Node: node, Nodes: nodes, Regions: regions, Listener: ln, DialTimeout: 3 * time.Second}
		inst, err := conn.Connect(lengths,
			reo.WithPartitioning(reo.PartitionRegions), reo.WithRemoteRegions(topo), reo.WithSeed(seed))
		if err == nil {
			inst.Close()
		}
		return err
	}
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errA = mk("a", lnA, 1) }()
	go func() { defer wg.Done(); errB = mk("b", lnB, 2) }()
	wg.Wait()
	if errA == nil && errB == nil {
		t.Fatal("mismatched seeds connected cleanly; want identity refusal")
	}
	for _, err := range []error{errA, errB} {
		if err != nil && !strings.Contains(err.Error(), "identity mismatch") {
			t.Errorf("err %v, want identity mismatch", err)
		}
	}
}

// TestRemoteTopologyValidation pins the eager assignment checks: every
// mistake surfaces as *OptionError at Connect, before anything listens.
func TestRemoteTopologyValidation(t *testing.T) {
	prog := reo.MustCompile(pipelineProto)
	conn := prog.MustConnector("Pipeline")
	lengths := map[string]int{"out": 2, "in": 2}
	nodes := map[string]string{"a": "127.0.0.1:1", "b": "127.0.0.1:2"}
	cases := []struct {
		name string
		topo *reo.RemoteTopology
		want string
	}{
		{"empty node", &reo.RemoteTopology{Nodes: nodes, Regions: map[string][]int{"a": {0, 1}}}, "empty node"},
		{"unknown self", &reo.RemoteTopology{Node: "c", Nodes: nodes, Regions: map[string][]int{"a": {0, 1}}}, "no address"},
		{"unknown assignee", &reo.RemoteTopology{Node: "a", Nodes: nodes, Regions: map[string][]int{"a": {0}, "c": {1}}}, "no address"},
		{"region out of range", &reo.RemoteTopology{Node: "a", Nodes: nodes, Regions: map[string][]int{"a": {0, 99}}}, "out of range"},
		{"region unassigned", &reo.RemoteTopology{Node: "a", Nodes: nodes, Regions: map[string][]int{"a": {0}}}, "not assigned"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := conn.Connect(lengths,
				reo.WithPartitioning(reo.PartitionRegions), reo.WithRemoteRegions(tc.topo))
			var oe *reo.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err %v, want *OptionError", err)
			}
			if oe.Option != "WithRemoteRegions" {
				t.Errorf("Option = %q", oe.Option)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q, want substring %q", err, tc.want)
			}
		})
	}
}
