// Tests of the batched port operations: semantics (ordered independent
// items, partial completion on close), the fused pure-flow fast path's
// accounting, and the zero-allocation guarantee of the steady-state
// firing path under batches.
package reo_test

import (
	"runtime"
	"testing"

	reo "repro"
)

// TestBatchFusedFlow pins the fused fast path on a stateless relay: a
// k-item batch through Sync must count k global steps (parity with the
// scalar run) while deciding dispatch only once — the amortization the
// batch buys.
func TestBatchFusedFlow(t *testing.T) {
	prog := reo.MustCompile(`Relay(a;b) = Sync(a;b)`)
	inst, err := prog.MustConnector("Relay").Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	out := inst.Outport("a")
	in := inst.Inport("b")

	const k = 128
	vs := make([]any, k)
	for i := range vs {
		vs[i] = i * 3
	}
	errc := make(chan error, 1)
	go func() { errc <- out.SendBatch(vs) }()
	buf := make([]any, k)
	n, err := in.RecvBatch(buf)
	if err != nil || n != k {
		t.Fatalf("RecvBatch = %d, %v; want %d, nil", n, err, k)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != i*3 {
			t.Fatalf("buf[%d] = %v, want %d", i, buf[i], i*3)
		}
	}
	if inst.Steps() != k {
		t.Errorf("Steps() = %d, want %d (every fused item is one global step)", inst.Steps(), k)
	}
	// One indexed dispatch for the whole burst: the 127 fused firings
	// re-evaluate no guards and rescan no candidates. The trailing
	// quiescence scan after the burst may add a handful of evaluations,
	// but nothing proportional to k.
	if ge := inst.GuardEvals(); ge > k/4 {
		t.Errorf("GuardEvals() = %d for %d items; fused burst should not dispatch per item", ge, k)
	}
}

// TestBatchPartialOnClose verifies the partial-batch contract: closing
// the connector mid-batch fails the operation but reports how many items
// had already moved.
func TestBatchPartialOnClose(t *testing.T) {
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	inst, err := prog.MustConnector("Lane").Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Outport("a").Send(7); err != nil {
		t.Fatal(err)
	}
	go func() {
		// The receive below fires the buffered item (global step 2) and
		// then parks with two slots unfilled; close it out.
		for inst.Steps() < 2 {
			runtime.Gosched()
		}
		inst.Close()
	}()
	buf := make([]any, 3)
	n, err := inst.Inport("b").RecvBatch(buf)
	if err == nil {
		t.Fatal("RecvBatch succeeded past a close")
	}
	if n != 1 || buf[0] != 7 {
		t.Fatalf("RecvBatch = %d (buf[0]=%v), want 1 delivered item", n, buf[0])
	}
}

// TestBatchEmptyAndBusy pins the edge cases: empty batches are no-ops,
// and a port stays single-owner while a batch is pending.
func TestBatchEmptyAndBusy(t *testing.T) {
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	inst, err := prog.MustConnector("Lane").Connect(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	out := inst.Outport("a")
	in := inst.Inport("b")
	if err := out.SendBatch(nil); err != nil {
		t.Fatalf("empty SendBatch: %v", err)
	}
	if n, err := in.RecvBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty RecvBatch = %d, %v", n, err)
	}
	// A two-item batch on a Fifo1 pends after its first item; a second
	// operation on the same port must be rejected.
	errc := make(chan error, 1)
	go func() { errc <- out.SendBatch([]any{1, 2}) }()
	for inst.Steps() < 1 {
		runtime.Gosched()
	}
	if err := out.Send(9); err == nil {
		t.Error("second operation on a port with a pending batch succeeded")
	}
	if _, err := in.RecvBatch(make([]any, 2)); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestBatchedSteadyStateAllocs asserts the hot-path guarantee the
// batched refactor must preserve: once every composite state is expanded
// and the op pool is warm, moving batches allocates nothing — not per
// operation and not per item. The Fifo chain absorbs a whole batch
// inside the send's own fire loop and drains it inside the receive's, so
// the measurement is single-goroutine deterministic.
func TestBatchedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is unreliable under -race")
	}
	prog := reo.MustCompile(`
Chain(a;b) = Fifo1(a;m1) mult Fifo1(m1;m2) mult Fifo1(m2;m3)
    mult Fifo1(m3;m4) mult Fifo1(m4;m5) mult Fifo1(m5;m6)
    mult Fifo1(m6;m7) mult Fifo1(m7;b)`)
	// AOT: the chain has 2^8 composite states and the engine picks among
	// enabled fills/drains randomly, so a JIT run keeps expanding fresh
	// states long past one warm round; expanding ahead of time leaves the
	// measured rounds nothing to allocate.
	inst, err := prog.MustConnector("Chain").Connect(nil, reo.WithMode(reo.AOT))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	out := inst.Outport("a")
	in := inst.Inport("b")

	const k = 8 // chain capacity: one batch fits entirely
	vs := make([]any, k)
	for i := range vs {
		vs[i] = i // pre-boxed payloads; boxing is caller-side work
	}
	buf := make([]any, k)
	round := func() {
		if err := out.SendBatch(vs); err != nil {
			t.Fatal(err)
		}
		if n, err := in.RecvBatch(buf); err != nil || n != k {
			t.Fatalf("RecvBatch = %d, %v", n, err)
		}
	}
	round() // warm: expand both composite state chains, fill the op pool

	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("steady-state batched round allocates %.2f times; want 0 (pooled ops, capacity-preserving value slices)", avg)
	}

	// The scalar path is the k=1 case of the same code path and must
	// stay allocation-free too (the BenchmarkFireSteady guarantee).
	if avg := testing.AllocsPerRun(200, func() {
		if err := out.Send(1); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Recv(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state scalar round allocates %.2f times; want 0", avg)
	}
}
