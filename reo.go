// Package reo is a Go implementation of the parametrized Reo coordination
// language of van Veen & Jongmans, "Modular Programming of Synchronization
// and Communication among Tasks in Parallel Programs" (IPDPSW 2018).
//
// Protocols among tasks are written as connector definitions in a textual
// DSL — compositions of Reo primitives, parametric in the number of tasks
// via port arrays, conditionals, and iterated composition:
//
//	OrderedN(tl[];hd[]) =
//	    if (#tl == 1) {
//	        Fifo1(tl[1];hd[1])
//	    } else {
//	        prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
//	        mult prod (i:1..#tl-1) Seq(next[i],prev[i+1];)
//	        mult Seq(prev[1],next[#tl];)
//	    }
//
//	X(tl;prev,next,hd) =
//	    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)
//
// Compile parses and checks a program; Program.Connector compiles one
// definition into a parametrized template (the compile-time share of the
// work); Connector.Connect instantiates it for concrete array lengths (the
// run-time share), returning Outports and Inports for tasks to use, in the
// generalized Foster-Chandy model: both send and receive block until the
// connector fires a transition involving the port.
package reo

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/ca"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/wire"
)

// Outport is a task's sending end of a connector boundary vertex.
type Outport interface {
	// Send offers v to the connector and blocks until some transition
	// accepts it (or the connector closes).
	Send(v any) error
	// SendBatch offers every item of vs in order as one registered
	// operation and blocks until the last is accepted. A batch is an
	// ordered sequence of independent items, not an atomic group: the
	// connector accepts them one transition firing at a time, exactly as
	// len(vs) consecutive Send calls would be observed, but the whole
	// batch pays for one engine-lock registration and one completion
	// handshake. The connector reads vs in place; do not mutate it until
	// SendBatch returns. An empty batch is a no-op. On a non-nil error
	// (connector closed or broken mid-batch) a prefix of vs may already
	// have been accepted by fired transitions; a producer that must
	// reconcile an interrupted stream should make items idempotent or
	// carry sequence numbers, as with any failed send.
	SendBatch(vs []any) error
	// Name returns the vertex name the port is linked to.
	Name() string
}

// Inport is a task's receiving end of a connector boundary vertex.
type Inport interface {
	// Recv blocks until the connector delivers a value.
	Recv() (any, error)
	// RecvBatch blocks until the connector has delivered a value into
	// every slot of buf, in order, as one registered operation — the
	// receiving mirror of Outport.SendBatch. Returns how many leading
	// slots hold delivered values: len(buf) on nil error, possibly fewer
	// when the connector closed or broke mid-batch. An empty buffer is a
	// no-op.
	RecvBatch(buf []any) (int, error)
	Name() string
}

// Mode selects the compilation/execution approach for a connector
// instance.
type Mode uint8

const (
	// JIT is the paper's new approach with just-in-time composition:
	// medium automata are instantiated at connect time and composite
	// states are expanded only when reached (§IV-D).
	JIT Mode = iota
	// AOT is the new approach with ahead-of-time composition: the full
	// reachable composite space is expanded at connect time.
	AOT
	// Static emulates the existing (pre-parametrization) compiler: the
	// whole "large automaton" is materialized for one concrete N before
	// execution, with hiding and transition-label simplification
	// applied. Connect fails with ErrTooLarge when the automaton
	// exceeds size limits — as the existing compiler does (§V-B).
	Static
)

// String renders the mode as its lower-case CLI name.
func (m Mode) String() string {
	switch m {
	case JIT:
		return "jit"
	case AOT:
		return "aot"
	default:
		return "static"
	}
}

// ErrTooLarge reports that composition exceeded configured size limits.
var ErrTooLarge = ca.ErrTooLarge

// Funcs registers the data functions available to Filter.* and
// Transformer.* primitives. Filters and transformers must be pure
// (deterministic, side-effect free): the engine evaluates guards only
// when an operation or a fired step can have changed their inputs, and
// runs transformations exactly once per fired step.
type Funcs = compile.Funcs

// CompileOption configures Compile.
type CompileOption func(*Program)

// WithFuncs registers data functions.
func WithFuncs(f Funcs) CompileOption {
	return func(p *Program) { p.funcs = f }
}

// WithMediumSimplify toggles transition-label simplification of
// compile-time medium automata (default on).
func WithMediumSimplify(on bool) CompileOption {
	return func(p *Program) { p.copts.Simplify = on }
}

// Program is a compiled protocol program: a set of connector definitions
// and optional main definitions.
// Program is safe for concurrent use once compiled.
type Program struct {
	file  *ast.File
	info  *sema.Info
	funcs Funcs
	copts compile.Options

	mu        sync.Mutex
	templates map[string]*compile.Template

	// poolMu guards pools: per-template freelists of recycled instances
	// (WithReuse), one pool per distinct (options, lengths) shape.
	poolMu sync.Mutex
	pools  map[string][]*instancePool
}

// instancePool is the freelist of recycled instances for one template
// under one exact configuration: only a Connect with equal options and
// equal lengths may receive a pooled instance, so recycling is
// observationally invisible (per-seed choice streams replay, counters
// restart at zero).
type instancePool struct {
	cfg     connectCfg
	lengths map[string]int
	mu      sync.Mutex
	free    []*Instance
}

func (pl *instancePool) get() *Instance {
	pl.mu.Lock()
	n := len(pl.free)
	if n == 0 {
		pl.mu.Unlock()
		return nil
	}
	inst := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	pl.mu.Unlock()
	inst.pooling.Store(false)
	return inst
}

func (pl *instancePool) put(inst *Instance) {
	pl.mu.Lock()
	pl.free = append(pl.free, inst)
	pl.mu.Unlock()
}

func sameLengths(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// poolFor finds (or creates) the instance pool for one template name +
// configuration + lengths shape. The linear scan compares comparable
// configs and small maps in place, so the steady-state lookup builds no
// composite key and allocates nothing.
func (p *Program) poolFor(name string, cfg *connectCfg, lengths map[string]int) *instancePool {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	if p.pools == nil {
		p.pools = make(map[string][]*instancePool)
	}
	for _, pl := range p.pools[name] {
		if pl.cfg == *cfg && sameLengths(pl.lengths, lengths) {
			return pl
		}
	}
	lcopy := make(map[string]int, len(lengths))
	for k, v := range lengths {
		lcopy[k] = v
	}
	pl := &instancePool{cfg: *cfg, lengths: lcopy}
	p.pools[name] = append(p.pools[name], pl)
	return pl
}

// Compile parses and checks a program in the textual syntax.
func Compile(src string, opts ...CompileOption) (*Program, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	p := &Program{
		file:      f,
		info:      info,
		copts:     compile.Options{Simplify: true},
		templates: make(map[string]*compile.Template),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// MustCompile is Compile, panicking on error. For tests and package-level
// connector constants.
func MustCompile(src string, opts ...CompileOption) *Program {
	p, err := Compile(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Definitions lists the connector definitions in the program.
func (p *Program) Definitions() []string {
	out := make([]string, 0, len(p.file.Defs))
	for _, d := range p.file.Defs {
		out = append(out, d.Name)
	}
	return out
}

// Connector compiles the named definition into a parametrized template.
// Templates are cached per program.
func (p *Program) Connector(name string) (*Connector, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.templates[name]; ok {
		return &Connector{prog: p, tmpl: t}, nil
	}
	t, err := compile.Build(p.info, name, p.funcs, p.copts)
	if err != nil {
		return nil, err
	}
	p.templates[name] = t
	return &Connector{prog: p, tmpl: t}, nil
}

// MustConnector is Connector, panicking on error.
func (p *Program) MustConnector(name string) *Connector {
	c, err := p.Connector(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Connector is a compiled, parametrized connector template.
type Connector struct {
	prog *Program
	tmpl *compile.Template
}

// Name returns the definition name.
func (c *Connector) Name() string { return c.tmpl.Name }

// Template exposes the compiled template (for cmd/reoc inspection).
func (c *Connector) Template() *compile.Template { return c.tmpl }

// connectCfg holds instance options. It stays comparable (scalars and
// pointers only): instance pools match recycled instances by comparing
// whole configurations.
type connectCfg struct {
	mode        Mode
	partition   PartitionMode
	workers     int
	expand      ca.ExpandMode
	cacheSize   int
	policy      engine.EvictionPolicy
	seed        int64
	maxStates   int
	simplify    bool
	simplifySet bool
	runtime     *engine.Runtime
	useRuntime  bool
	reuse       bool
	// remote is stored by pointer so connectCfg stays comparable; the
	// topology itself is treated as immutable after Connect.
	remote *RemoteTopology
}

// ErrInvalidOption is the sentinel every Connect option-validation
// error wraps: errors.Is(err, ErrInvalidOption) detects misconfigured
// Connect calls without matching on message text.
var ErrInvalidOption = errors.New("reo: invalid connect option")

// OptionError reports an incompatible or out-of-range Connect option.
// It wraps ErrInvalidOption.
type OptionError struct {
	// Option names the offending option as written ("WithWorkers").
	Option string
	// Reason says what about it is invalid.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("reo: invalid option %s: %s", e.Option, e.Reason)
}

// Unwrap makes errors.Is(err, ErrInvalidOption) hold.
func (e *OptionError) Unwrap() error { return ErrInvalidOption }

// validate rejects incompatible or out-of-range option combinations
// eagerly, at Connect time, instead of silently ignoring them.
func (c *connectCfg) validate() error {
	if c.cacheSize < 0 {
		return &OptionError{Option: "WithStateCache", Reason: fmt.Sprintf("negative cache size %d", c.cacheSize)}
	}
	if c.maxStates < 0 {
		return &OptionError{Option: "WithMaxStates", Reason: fmt.Sprintf("negative state bound %d", c.maxStates)}
	}
	if c.workers != 0 && c.partition != PartitionRegions {
		return &OptionError{Option: "WithWorkers", Reason: fmt.Sprintf("requires WithPartitioning(PartitionRegions), not %s", c.partition)}
	}
	if c.useRuntime && c.partition != PartitionRegions {
		return &OptionError{Option: "WithRuntime", Reason: fmt.Sprintf("requires WithPartitioning(PartitionRegions), not %s", c.partition)}
	}
	if c.useRuntime && c.workers != 0 {
		return &OptionError{Option: "WithRuntime", Reason: "mutually exclusive with WithWorkers (a shared runtime brings its own pool)"}
	}
	if c.reuse && c.workers != 0 {
		return &OptionError{Option: "WithReuse", Reason: "incompatible with WithWorkers: a dedicated pool is torn down at Close and cannot be recycled; share a pool with WithRuntime instead"}
	}
	if c.remote != nil {
		if c.partition != PartitionRegions {
			return &OptionError{Option: "WithRemoteRegions", Reason: fmt.Sprintf("requires WithPartitioning(PartitionRegions) — regions are the unit of distribution, not %s partitions", c.partition)}
		}
		if c.mode == Static {
			return &OptionError{Option: "WithRemoteRegions", Reason: "incompatible with WithMode(Static): the static product is one global automaton and cannot be cut across processes"}
		}
		if c.reuse {
			return &OptionError{Option: "WithRemoteRegions", Reason: "incompatible with WithReuse: Close tears the peer connections down, so a remote instance cannot be recycled"}
		}
	}
	return nil
}

// ConnectOption configures a connector instance.
type ConnectOption func(*connectCfg)

// WithMode selects JIT (default), AOT, or Static execution.
func WithMode(m Mode) ConnectOption { return func(c *connectCfg) { c.mode = m } }

// PartitionMode selects how Connect splits an instance into
// independently locked engines.
type PartitionMode uint8

const (
	// PartitionOff runs the whole connector in one engine under one lock.
	PartitionOff PartitionMode = iota
	// PartitionComponents splits the constituents into connected
	// components of the shared-port graph (§V-C(3) optimization):
	// components share no ports, so each becomes an independent engine.
	PartitionComponents
	// PartitionRegions additionally cuts connectors at buffer
	// constituents (Fifo1/Fifo1Full shapes, detected structurally): a
	// full buffer never requires consensus across it, so its two sides
	// become separate synchronous regions joined by a bounded queue and
	// fire concurrently — even when the connector is a single component.
	PartitionRegions
)

// String renders the partition mode as its lower-case CLI name.
func (m PartitionMode) String() string {
	switch m {
	case PartitionComponents:
		return "components"
	case PartitionRegions:
		return "regions"
	default:
		return "off"
	}
}

// WithPartitioning selects the partitioning mode. Not applicable to
// Static mode (the product is already global).
func WithPartitioning(mode PartitionMode) ConnectOption {
	return func(c *connectCfg) { c.partition = mode }
}

// WithWorkers runs the regions of a PartitionRegions instance on an
// n-worker scheduler: cross-region wake-ups are posted to a worker pool
// (a work-stealing run queue keyed by region) instead of being drained
// inline on the goroutine whose Send/Recv fired, so the regions of one
// connector occupy up to n cores concurrently.
//
// n = 0 (the default) keeps today's synchronous draining: all region
// fires run on the callers' goroutines, which preserves the strongest
// reproducibility (with WithSeed and deterministic task order, whole
// runs replay exactly) and avoids pool overhead for connectors whose
// regions are short or serial. n < 0 selects runtime.GOMAXPROCS(0).
// The pool is capped at the region count. Connect fails with an
// OptionError unless WithPartitioning(PartitionRegions) is in effect;
// it is also mutually exclusive with WithRuntime (a shared runtime
// brings its own pool) and with WithReuse (a dedicated pool is torn
// down at Close, so the instance cannot be recycled).
//
// Determinism: per-port delivered sequences of deterministic protocols
// are identical in both modes (the differential tests pin this); the
// interleaving across regions, and therefore the choices of protocols
// that race cross-region timing, follow the scheduler. Each region
// still resolves its local nondeterminism from WithSeed + its region
// index, and the per-worker τ budget mirrors the synchronous walk's
// livelock guard (MaxTauBurst).
func WithWorkers(n int) ConnectOption {
	return func(c *connectCfg) { c.workers = n }
}

// Runtime is a shared worker pool multiplexing the regions of many
// connector instances over one fixed set of goroutines — the
// serving-many-instances counterpart of the per-instance pool
// WithWorkers starts. Build one with NewRuntime, or let WithRuntime(nil)
// use the process-global default.
type Runtime = engine.Runtime

// NewRuntime starts a shared runtime with the given number of workers
// (<= 0 selects GOMAXPROCS). Close it only after every instance
// attached to it has been closed.
func NewRuntime(workers int) *Runtime { return engine.NewRuntime(workers) }

// DefaultRuntime returns the process-global shared runtime backing
// WithRuntime(nil), starting its GOMAXPROCS workers on first use. It is
// never shut down.
func DefaultRuntime() *Runtime { return engine.DefaultRuntime() }

// WithRuntime runs the regions of a PartitionRegions instance on a
// shared Runtime instead of a dedicated pool: the instance attaches at
// Connect and detaches at Close, so N live instances are multiplexed
// over one fixed set of workers — and Connect/Close churn spawns no
// goroutines. rt == nil selects the process-global DefaultRuntime.
//
// Execution semantics match WithWorkers (wake-up posting, stealing,
// per-region seeds, the τ-livelock budget — scoped per instance, so one
// instance's throughput never masks another's livelock); only pool
// ownership differs. Connect fails with an OptionError unless
// WithPartitioning(PartitionRegions) is in effect, or if WithWorkers is
// also set.
func WithRuntime(rt *Runtime) ConnectOption {
	return func(c *connectCfg) { c.runtime, c.useRuntime = rt, true }
}

// WithReuse pools instances per template and configuration: Close
// resets the instance to its initial state and parks it, and the next
// Connect of the same Connector with the same options and lengths pops
// it instead of building a new one, so steady-state Connect/Close churn
// costs near-zero allocations.
//
// The contract a recycling caller accepts: Close must be called exactly
// once per Connect, and no port or statistics access may follow it —
// the instance (and its ports) may already belong to another Connect
// caller. Counters read as freshly zeroed on the recycled instance and
// the choice stream replays from the seed; only Expansions can differ
// from a truly fresh instance (the composite-state cache stays warm).
// Incompatible with WithWorkers (see WithRuntime).
func WithReuse(on bool) ConnectOption {
	return func(c *connectCfg) { c.reuse = on }
}

// RemoteTopology places the regions of a PartitionRegions instance
// across processes: every process runs the same program, connects the
// same connector with the same lengths, seed, and topology, and hosts
// the regions assigned to its node name. The cut links between nodes
// are carried over TCP (one connection per node pair) as framed batch
// messages with end-to-end flow control sized to the planned queue
// capacity, so the distributed run fires the same steps, in the same
// per-port order, as the single-process run.
//
// Use `reoc regions <file> <connector> -n <N>` to see the region plan
// the assignment refers to. Values crossing node boundaries are encoded
// with encoding/gob; concrete types beyond numbers, strings, bools,
// []byte, []any and map[string]any must be registered on every node
// with RegisterWireType.
type RemoteTopology struct {
	// Node is this process's name in Nodes.
	Node string
	// Nodes maps node names to their listen addresses ("host:port").
	Nodes map[string]string
	// Regions assigns plan region indices to node names. Every region
	// must be assigned to exactly one node.
	Regions map[string][]int
	// Listener, when non-nil, accepts peer connections instead of
	// listening on Nodes[Node] (tests use a 127.0.0.1:0 listener).
	Listener net.Listener
	// DialTimeout bounds connection establishment per peer, retries
	// included (default 10s) — peers started slightly apart connect as
	// soon as both listen.
	DialTimeout time.Duration
}

// WithRemoteRegions distributes the instance's regions across processes
// according to the topology: Connect builds engines only for the
// regions assigned to topo.Node, connects the peer nodes (dialing with
// capped-backoff retry, so start order does not matter), and verifies
// in the handshake that every process instantiated the same connector,
// lengths, seed, and assignment. Requires
// WithPartitioning(PartitionRegions); incompatible with WithMode(Static)
// and WithReuse. Close notifies the peers, which close their ends in
// turn. A connection failure breaks the local regions: pending and
// future operations fail wrapping engine.ErrLinkBroken.
func WithRemoteRegions(topo *RemoteTopology) ConnectOption {
	return func(c *connectCfg) { c.remote = topo }
}

// ErrLinkBroken is the sentinel a distributed instance's operations
// fail with when a peer connection drops or violates the protocol.
var ErrLinkBroken = engine.ErrLinkBroken

// RegisterWireType registers a concrete value type for transmission
// over distributed region links. The wire protocol encodes the common
// payload types (nil, bool, the int/uint family, floats, string,
// []byte, []any) with a compact typed fast path; anything else rides a
// per-value gob fallback and must be registered — identically on every
// node of the topology — before the first Connect.
func RegisterWireType(v any) { wire.Register(v) }

// RegisterWireUnit registers a zero-size struct type (a marker value
// like prim.Token) for the wire's two-byte unit encoding: such values
// cost one tag byte plus a table index and decode allocation-free to
// the canonical registered value. Registration order defines the table
// indices, so every node must register the same unit types in the same
// order — in practice, from the same package init functions. Panics if
// the type carries data.
func RegisterWireUnit(v any) { wire.RegisterUnit(v) }

// WithFullExpansion enables the textbook joint-step enumeration, which
// combines independent local steps into single global steps. Exponentially
// many transitions per composite state are possible — the blow-up the
// paper observes for NPB at N >= 16.
func WithFullExpansion(on bool) ConnectOption {
	return func(c *connectCfg) {
		if on {
			c.expand = ca.ExpandFull
		} else {
			c.expand = ca.ExpandConnected
		}
	}
}

// WithStateCache bounds the JIT composite-state cache and sets the
// eviction policy (the §V-B future-work extension). size 0 = unbounded.
func WithStateCache(size int, policy CachePolicy) ConnectOption {
	return func(c *connectCfg) {
		c.cacheSize = size
		c.policy = engine.EvictionPolicy(policy)
	}
}

// CachePolicy selects the state-cache eviction policy.
type CachePolicy uint8

// Cache eviction policies.
const (
	LRU    CachePolicy = CachePolicy(engine.LRU)
	FIFO   CachePolicy = CachePolicy(engine.FIFO)
	Random CachePolicy = CachePolicy(engine.RandomEvict)
)

// WithSeed fixes the nondeterministic-choice seed for reproducible runs.
func WithSeed(s int64) ConnectOption { return func(c *connectCfg) { c.seed = s } }

// WithMaxStates bounds composition (AOT expansion; Static product).
func WithMaxStates(n int) ConnectOption { return func(c *connectCfg) { c.maxStates = n } }

// WithStaticSimplify toggles transition-label simplification of the
// Static mode's large automaton (default on; the E7 ablation).
func WithStaticSimplify(on bool) ConnectOption {
	return func(c *connectCfg) { c.simplify = on; c.simplifySet = true }
}

// Instance is a live connector coordinating tasks through its ports.
type Instance struct {
	coord engine.Coordinator
	asm   *compile.Assembly

	outs map[string][]*engine.Outport
	ins  map[string][]*engine.Inport

	// pool is the freelist Close recycles the instance into (nil unless
	// connected WithReuse); pooling guards against a double Close
	// recycling the same instance twice.
	pool    *instancePool
	pooling atomic.Bool
}

// Connect instantiates the connector for the given array lengths (one
// entry per array parameter; scalar parameters need none). The returned
// instance owns fresh ports for every boundary vertex.
func (c *Connector) Connect(lengths map[string]int, opts ...ConnectOption) (*Instance, error) {
	cfg := &connectCfg{simplify: true}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.useRuntime && cfg.runtime == nil {
		// Resolve before validation and pool keying, so all
		// WithRuntime(nil) instances share one pool entry.
		cfg.runtime = engine.DefaultRuntime()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var pool *instancePool
	if cfg.reuse {
		pool = c.prog.poolFor(c.tmpl.Name, cfg, lengths)
		if inst := pool.get(); inst != nil {
			return inst, nil
		}
	}
	asm, err := c.tmpl.Instantiate(lengths)
	if err != nil {
		return nil, err
	}
	coord, err := buildCoordinator(asm, c.tmpl.Name, cfg)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		coord: coord,
		asm:   asm,
		outs:  make(map[string][]*engine.Outport),
		ins:   make(map[string][]*engine.Inport),
		pool:  pool,
	}
	for name, ports := range asm.Tails {
		for _, p := range ports {
			inst.outs[name] = append(inst.outs[name], engine.NewOutport(coord, p, asm.U.Name(p)))
		}
	}
	for name, ports := range asm.Heads {
		for _, p := range ports {
			inst.ins[name] = append(inst.ins[name], engine.NewInport(coord, p, asm.U.Name(p)))
		}
	}
	return inst, nil
}

func buildCoordinator(asm *compile.Assembly, name string, cfg *connectCfg) (engine.Coordinator, error) {
	eopts := engine.Options{
		Expand:    cfg.expand,
		CacheSize: cfg.cacheSize,
		Policy:    cfg.policy,
		Seed:      cfg.seed,
		MaxStates: cfg.maxStates,
		Workers:   cfg.workers,
		Runtime:   cfg.runtime,
	}
	switch cfg.mode {
	case Static:
		lim := ca.ProductLimits{MaxStates: cfg.maxStates}
		large, err := ca.ProductAll(asm.Auts, cfg.expand, lim)
		if err != nil {
			return nil, fmt.Errorf("reo: static compilation failed: %w", err)
		}
		hidden := asm.U.NewSet()
		large.Ports.ForEach(func(p ca.PortID) {
			if asm.U.DirOf(p) == ca.DirNone {
				hidden.Set(p)
			}
		})
		large = ca.Hide(large, hidden)
		if cfg.simplify {
			vis := func(p ca.PortID) bool { return asm.U.DirOf(p) != ca.DirNone }
			simplified, err := ca.Simplify(large, vis)
			if err != nil {
				return nil, fmt.Errorf("reo: static simplification failed: %w", err)
			}
			large = simplified
		}
		return engine.New(asm.U, []*ca.Automaton{large}, eopts)
	case AOT:
		eopts.Composition = engine.AOT
	default:
		eopts.Composition = engine.JIT
	}
	switch cfg.partition {
	case PartitionComponents:
		return engine.NewMulti(asm.U, asm.Auts, eopts)
	case PartitionRegions:
		if cfg.remote != nil {
			return buildRemote(asm, name, cfg, eopts)
		}
		return engine.NewMultiRegions(asm.U, asm.Auts, eopts)
	}
	return engine.New(asm.U, asm.Auts, eopts)
}

// buildRemote resolves the topology against the instance's region plan
// and builds the placed coordinator over a TCP transport. Assignment
// mistakes surface as *OptionError before anything listens or dials.
func buildRemote(asm *compile.Assembly, name string, cfg *connectCfg, eopts engine.Options) (engine.Coordinator, error) {
	topo := cfg.remote
	bad := func(format string, args ...any) error {
		return &OptionError{Option: "WithRemoteRegions", Reason: fmt.Sprintf(format, args...)}
	}
	if topo.Node == "" {
		return nil, bad("empty node name")
	}
	if _, ok := topo.Nodes[topo.Node]; !ok {
		return nil, bad("node %q has no address in Nodes", topo.Node)
	}
	plan := ca.PlanRegions(asm.U, asm.Auts)
	regionNode := make([]string, len(plan.Regions))
	for node, ris := range topo.Regions {
		if _, ok := topo.Nodes[node]; !ok {
			return nil, bad("assignment names node %q, which has no address in Nodes", node)
		}
		for _, ri := range ris {
			if ri < 0 || ri >= len(plan.Regions) {
				return nil, bad("region %d out of range: the plan for these lengths has %d regions (inspect with `reoc regions`)", ri, len(plan.Regions))
			}
			if regionNode[ri] != "" {
				return nil, bad("region %d assigned to both %q and %q", ri, regionNode[ri], node)
			}
			regionNode[ri] = node
		}
	}
	for ri, n := range regionNode {
		if n == "" {
			return nil, bad("region %d not assigned to any node: the plan for these lengths has %d regions (inspect with `reoc regions`)", ri, len(plan.Regions))
		}
	}
	hosted := make([]bool, len(plan.Regions))
	for ri, n := range regionNode {
		hosted[ri] = n == topo.Node
	}
	// The handshake identity pins everything that must match for the
	// processes to be halves of the same run: the connector, the seed
	// (per-region choice streams derive from it), the plan shape, and
	// the assignment itself.
	parts := []string{name, fmt.Sprintf("seed=%d", cfg.seed), fmt.Sprintf("regions=%d", len(plan.Regions))}
	for li, lk := range plan.Links {
		parts = append(parts, fmt.Sprintf("link %d: %d@%s -> %d@%s cap %d full %v",
			li, lk.From, regionNode[lk.From], lk.To, regionNode[lk.To], lk.Capacity, lk.Full))
	}
	tr := engine.NewTCPTransport(engine.TCPConfig{
		Node:        topo.Node,
		Nodes:       topo.Nodes,
		RegionNode:  regionNode,
		Listener:    topo.Listener,
		Identity:    wire.IdentitySum(parts...),
		DialTimeout: topo.DialTimeout,
	})
	return engine.NewMultiRegionsPlaced(asm.U, asm.Auts, eopts, engine.Placement{Hosted: hosted, Transport: tr})
}

// Outports returns the task-side sending ports bound to a tail parameter,
// in array order.
func (i *Instance) Outports(param string) []Outport {
	ps := i.outs[param]
	out := make([]Outport, len(ps))
	for k, p := range ps {
		out[k] = p
	}
	return out
}

// Outport returns the single port of a scalar tail parameter (or the
// first element of an array).
func (i *Instance) Outport(param string) Outport {
	ps := i.outs[param]
	if len(ps) == 0 {
		return nil
	}
	return ps[0]
}

// Inports returns the task-side receiving ports bound to a head
// parameter, in array order.
func (i *Instance) Inports(param string) []Inport {
	ps := i.ins[param]
	out := make([]Inport, len(ps))
	for k, p := range ps {
		out[k] = p
	}
	return out
}

// Inport returns the single port of a scalar head parameter.
func (i *Instance) Inport(param string) Inport {
	ps := i.ins[param]
	if len(ps) == 0 {
		return nil
	}
	return ps[0]
}

// Close shuts the connector down; all pending and future operations
// fail. Idempotent and safe to call concurrently. Under WithReuse,
// Close additionally resets the instance and parks it in its template's
// pool — see WithReuse for the exactly-once contract that implies for
// recycling callers.
func (i *Instance) Close() error {
	err := i.coord.Close()
	if i.pool != nil && i.pooling.CompareAndSwap(false, true) {
		type resetter interface{ Reset() error }
		if r, ok := i.coord.(resetter); ok && r.Reset() == nil {
			i.pool.put(i)
		}
		// A coordinator that cannot reset is simply dropped: the next
		// Connect builds fresh. pooling stays set so a racing Close
		// cannot recycle twice.
	}
	return err
}

// Steps returns the number of global execution steps fired — the metric
// of the paper's connector benchmarks.
func (i *Instance) Steps() int64 { return i.coord.Steps() }

// Expansions returns the number of composite states expanded at run time
// (composition work deferred to run time).
func (i *Instance) Expansions() int64 { return i.coord.Expansions() }

// GuardEvals returns the number of candidate transitions whose guards the
// engine evaluated while dispatching. Together with Steps it measures the
// per-step matching work: GuardEvals()/Steps() is the average number of
// transitions considered per fired global step.
func (i *Instance) GuardEvals() int64 { return i.coord.GuardEvals() }

// Constituents returns the number of constituent automata of the
// instance (1 in Static mode).
func (i *Instance) Constituents() int { return len(i.asm.Auts) }

// Partitions returns the number of independent engines (1 unless
// partitioning is enabled).
func (i *Instance) Partitions() int {
	if m, ok := i.coord.(*engine.Multi); ok {
		return m.Partitions()
	}
	return 1
}

// Workers returns the size of the scheduler pool the instance's regions
// fire on (see WithWorkers), or 0 when cross-region progress is driven
// synchronously by the tasks' own goroutines.
func (i *Instance) Workers() int {
	if m, ok := i.coord.(*engine.Multi); ok {
		return m.Workers()
	}
	return 0
}

// RegionInfo is a per-partition statistics snapshot (see
// Instance.Regions).
type RegionInfo struct {
	// Constituents counts the automata executing in the partition,
	// including node automata synthesized for link endpoints.
	Constituents int
	// Links counts the buffered link endpoints attached to the partition
	// (0 unless PartitionRegions cut a buffer at its boundary).
	Links int
	// Worker is the scheduler worker the region's run queue is keyed to
	// under WithWorkers (idle workers may steal it), or -1 when the
	// instance runs without a worker pool.
	Worker int
	// Steps/Expansions/GuardEvals are the partition's share of the
	// instance counters.
	Steps, Expansions, GuardEvals int64
}

// Regions returns one entry per independent engine of the instance: the
// synchronous regions under WithPartitioning(PartitionRegions), the
// components under PartitionComponents, and a single entry otherwise.
func (i *Instance) Regions() []RegionInfo {
	if m, ok := i.coord.(*engine.Multi); ok {
		infos := m.Infos()
		out := make([]RegionInfo, len(infos))
		for k, in := range infos {
			out[k] = RegionInfo{
				Constituents: in.Constituents,
				Links:        in.Links,
				Worker:       in.Worker,
				Steps:        in.Steps,
				Expansions:   in.Expansions,
				GuardEvals:   in.GuardEvals,
			}
		}
		return out
	}
	return []RegionInfo{{
		Constituents: len(i.asm.Auts),
		Worker:       -1,
		Steps:        i.coord.Steps(),
		Expansions:   i.coord.Expansions(),
		GuardEvals:   i.coord.GuardEvals(),
	}}
}

// SetTracer installs a hook receiving a rendered description of every
// global execution step the connector fires ("step 3: {a->5, b<-5}"),
// for debugging protocols. Pass nil to clear. The hook runs inside the
// engine's critical section: keep it fast and do not perform port
// operations from it.
func (i *Instance) SetTracer(fn func(string)) {
	type traceable interface{ SetTracer(engine.Tracer) }
	tr, ok := i.coord.(traceable)
	if !ok {
		return
	}
	if fn == nil {
		tr.SetTracer(nil)
		return
	}
	tr.SetTracer(func(e engine.TraceEvent) { fn(e.String()) })
}

// Backend is the name-addressed runtime contract shared by interpreted
// instances and the packages emitted by `reoc gen`: Send/Recv and their
// batched forms keyed by boundary vertex name, parameter-to-vertex
// lookup, and the Steps/GuardEvals/OpsRegistered statistics. Code
// written against Backend runs unchanged on either backend — pass it
// Instance.Backend() or a generated package's New() result.
type Backend = engine.Backend

// Backend adapts the instance to the shared backend contract, for code
// that must run interchangeably on the interpreted engine and on
// statically generated connectors (differential tests, benchmarks, the
// quickstart walkthrough).
func (i *Instance) Backend() Backend {
	sources := make(map[string][]engine.NamedPort)
	for param, ps := range i.outs {
		for _, p := range ps {
			sources[param] = append(sources[param], engine.NamedPort{Name: p.Name(), ID: int32(p.ID())})
		}
	}
	sinks := make(map[string][]engine.NamedPort)
	for param, ps := range i.ins {
		for _, p := range ps {
			sinks[param] = append(sinks[param], engine.NamedPort{Name: p.Name(), ID: int32(p.ID())})
		}
	}
	return engine.NewNamed(i.coord, sources, sinks)
}

// Universe exposes the instance universe (diagnostics, cmd/reoc).
func (i *Instance) Universe() *ca.Universe { return i.asm.U }

// Automata exposes the instance's constituent automata (diagnostics).
func (i *Instance) Automata() []*ca.Automaton { return i.asm.Auts }
