package reo_test

import (
	"testing"

	reo "repro"
	"repro/internal/connlib"
	"repro/internal/npb"
	"repro/internal/parser"
	"repro/internal/sema"
)

// fuzzSeeds are the real protocol programs the repository ships: the
// eighteen benchmark connectors, the NPB communication fabrics, and a
// few adversarial shapes around the grammar's edges.
func fuzzSeeds() []string {
	var seeds []string
	for _, d := range connlib.All() {
		seeds = append(seeds, d.Src)
	}
	seeds = append(seeds, npb.ConnectorSources()...)
	seeds = append(seeds,
		"X(a;b) = Sync(a;b)",
		"X(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])",
		"X(a;b) = if (#a > 0) { Sync(a;b) }",
		"X(a;b) = Y(a;b)\nY(a;b) = Transformer.inc(a;b)",
		"X(a;b) = prod (i:1..0) Sync(a;b)",
		"X(;out[]) = prod (i:1..#out) Fifo1Full(out[i];out[i])",
		"X(a;) = SyncDrain(a,a;)",
		"X(a;b) = Sync(a;b) mult Sync(a;b)",
		"X(in[1];out) = Merger(in[1..#in];out)",
	)
	return seeds
}

// hugeLiteral guards the expansion stages: a fuzzed `prod (i:1..9999999)`
// is a legitimate program whose flattening is simply enormous, so inputs
// with long digit runs stop after parse+check (panic coverage of the
// front end is unaffected — literals that large change only how much
// work expansion does, not which code runs).
func hugeLiteral(src []byte) bool {
	run := 0
	for _, b := range src {
		if b >= '0' && b <= '9' {
			if run++; run > 4 {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// FuzzParse throws arbitrary text at the lexer and parser. The contract
// is an error or an AST, never a panic; a parsed file must also render
// and re-parse without the front end disagreeing with itself about
// well-formedness.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Add("X(a;b) = \x00")
	f.Add("X(a;b) = Sync(a;b")
	f.Add("((((((((((")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.Parse(src)
		if err != nil {
			return
		}
		// Semantic analysis on whatever parses: also panic-free.
		_, _ = sema.Check(file)
	})
}

// FuzzCompile drives accepted programs through the whole pipeline:
// parse, check, template build per definition, and a small-N
// instantiation (skipped for inputs with huge literals, whose expansion
// cost is unbounded by construction). Errors are fine at every stage;
// panics never are.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := reo.Compile(src)
		if err != nil {
			return
		}
		if hugeLiteral([]byte(src)) {
			return
		}
		for _, name := range prog.Definitions() {
			conn, err := prog.Connector(name)
			if err != nil {
				continue
			}
			tmpl := conn.Template()
			lengths := map[string]int{}
			for _, p := range tmpl.ArrayParams() {
				lengths[p] = 2
			}
			_, _ = tmpl.Instantiate(lengths)
		}
	})
}
