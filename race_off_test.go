//go:build !race

package reo_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are unreliable under it.
const raceEnabled = false
