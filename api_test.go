package reo_test

import (
	"errors"
	"testing"
	"time"

	reo "repro"
)

func TestDefinitionsListing(t *testing.T) {
	prog := reo.MustCompile(srcEx11)
	defs := prog.Definitions()
	want := map[string]bool{"ConnectorEx11a": true, "X": true, "ConnectorEx11b": true}
	if len(defs) != len(want) {
		t.Fatalf("definitions = %v", defs)
	}
	for _, d := range defs {
		if !want[d] {
			t.Errorf("unexpected definition %q", d)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on a bad program")
		}
	}()
	reo.MustCompile(`A(a;b) = Nope(a;b)`)
}

func TestMustConnectorPanics(t *testing.T) {
	prog := reo.MustCompile(`A(a;b) = Sync(a;b)`)
	defer func() {
		if recover() == nil {
			t.Error("MustConnector did not panic on unknown name")
		}
	}()
	prog.MustConnector("Missing")
}

// TestMediumSimplifyOff: disabling compile-time label simplification must
// not change observable behavior.
func TestMediumSimplifyOff(t *testing.T) {
	prog := reo.MustCompile(srcEx11N, reo.WithMediumSimplify(false))
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"tl": 3, "hd": 3})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	checkOrderedProtocol(t, inst, 3, 2, "tl", "hd")
}

// TestFullExpansionCorrect: the textbook enumeration must be observably
// equivalent on a deterministic connector (just slower).
func TestFullExpansionCorrect(t *testing.T) {
	prog := reo.MustCompile(srcEx11N)
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"tl": 3, "hd": 3}, reo.WithFullExpansion(true))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	checkOrderedProtocol(t, inst, 3, 2, "tl", "hd")
}

// TestInstanceIntrospection covers the diagnostic surface.
func TestInstanceIntrospection(t *testing.T) {
	prog := reo.MustCompile(srcEx11N)
	conn, err := prog.Connector("ConnectorEx11N")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"tl": 2, "hd": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if conn.Name() != "ConnectorEx11N" {
		t.Error("connector name lost")
	}
	if inst.Constituents() == 0 || inst.Partitions() != 1 {
		t.Errorf("constituents=%d partitions=%d", inst.Constituents(), inst.Partitions())
	}
	if inst.Universe() == nil || len(inst.Automata()) != inst.Constituents() {
		t.Error("introspection inconsistent")
	}
	if inst.Outport("nope") != nil || inst.Inport("nope") != nil {
		t.Error("unknown param returned a port")
	}
	if inst.Outport("tl") == nil || inst.Inport("hd") == nil {
		t.Error("known param returned no port")
	}
}

// TestPortNames: ports carry their vertex names for diagnostics.
func TestPortNames(t *testing.T) {
	prog := reo.MustCompile(`A(a[];b) = Merger(a[1..#a];b)`)
	conn, err := prog.Connector("A")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if got := inst.Outports("a")[1].Name(); got != "a[2]" {
		t.Errorf("port name = %q", got)
	}
	if got := inst.Inport("b").Name(); got != "b" {
		t.Errorf("port name = %q", got)
	}
}

// TestAOTModeEndToEnd drives a stateful connector under AOT composition.
func TestAOTModeEndToEnd(t *testing.T) {
	prog := reo.MustCompile(`P(a;b) = Fifo1(a;m) mult Fifo1(m;b)`)
	conn, err := prog.Connector("P")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(nil, reo.WithMode(reo.AOT))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	// All reachable states are expanded up front; traffic must add none.
	pre := inst.Expansions()
	within(t, 10*time.Second, "aot traffic", func() {
		go func() {
			for i := 0; i < 10; i++ {
				inst.Outport("a").Send(i)
			}
		}()
		for i := 0; i < 10; i++ {
			v, err := inst.Inport("b").Recv()
			if err != nil || v != i {
				t.Errorf("recv = %v, %v", v, err)
			}
		}
	})
	if inst.Expansions() != pre {
		t.Errorf("AOT expanded %d more states at run time", inst.Expansions()-pre)
	}
}

// TestConnectOptionValidation: incompatible or out-of-range options
// must fail eagerly at Connect with a typed *reo.OptionError wrapping
// reo.ErrInvalidOption — not be silently ignored.
func TestConnectOptionValidation(t *testing.T) {
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn, err := prog.Connector("Lane")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		option string // the option the error must name
		opts   []reo.ConnectOption
	}{
		{"workers without regions", "WithWorkers",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionOff), reo.WithWorkers(2)}},
		{"workers with components", "WithWorkers",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionComponents), reo.WithWorkers(2)}},
		{"runtime without regions", "WithRuntime",
			[]reo.ConnectOption{reo.WithRuntime(nil)}},
		{"runtime plus workers", "WithRuntime",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil), reo.WithWorkers(2)}},
		{"reuse plus workers", "WithReuse",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(2), reo.WithReuse(true)}},
		{"negative state cache", "WithStateCache",
			[]reo.ConnectOption{reo.WithStateCache(-1, reo.LRU)}},
		{"negative max states", "WithMaxStates",
			[]reo.ConnectOption{reo.WithMaxStates(-4)}},
		{"remote without regions", "WithRemoteRegions",
			[]reo.ConnectOption{reo.WithRemoteRegions(&reo.RemoteTopology{})}},
		{"remote with components", "WithRemoteRegions",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionComponents), reo.WithRemoteRegions(&reo.RemoteTopology{})}},
		{"remote with static mode", "WithRemoteRegions",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions), reo.WithMode(reo.Static), reo.WithRemoteRegions(&reo.RemoteTopology{})}},
		{"remote plus reuse", "WithRemoteRegions",
			[]reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions), reo.WithReuse(true), reo.WithRemoteRegions(&reo.RemoteTopology{})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := conn.Connect(nil, tc.opts...)
			if err == nil {
				inst.Close()
				t.Fatal("Connect accepted an invalid option combination")
			}
			if !errors.Is(err, reo.ErrInvalidOption) {
				t.Errorf("errors.Is(err, ErrInvalidOption) = false for %v", err)
			}
			var oe *reo.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Errorf("OptionError.Option = %q, want %q (%v)", oe.Option, tc.option, err)
			}
		})
	}

	// The valid combinations still connect.
	for _, opts := range [][]reo.ConnectOption{
		{reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(2)},
		{reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil), reo.WithReuse(true)},
		{reo.WithStateCache(0, reo.LRU)},
	} {
		inst, err := conn.Connect(nil, opts...)
		if err != nil {
			t.Fatalf("valid options rejected: %v", err)
		}
		inst.Close()
	}
}
