package reo_test

import (
	"fmt"
	"regexp"
	"testing"
)

// reproCmd pins a differential failure to its replay command: the root
// harnesses are deterministic functions of their fixed seed, so the
// exact test invocation plus the seed reproduces the divergence. For
// broader search around a failure, `reoc explore` generates and shrinks
// adversarial cases from any seed.
func reproCmd(t *testing.T, seed int64) string {
	return fmt.Sprintf("repro: go test -run '%s' . (deterministic, seed %d)",
		regexp.QuoteMeta(t.Name()), seed)
}
