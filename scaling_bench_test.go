// BenchmarkRegionScaling measures steps/s of buffer-decomposable
// connectors under the partition modes and the worker scheduler. Sweep
// GOMAXPROCS with the standard -cpu flag to see the scaling the region
// cut buys:
//
//	go test -run xxx -bench RegionScaling -cpu 1,4,8
//
// PartitionOff serializes every fire on one lock, so its step rate is
// flat in GOMAXPROCS; PartitionRegions fires each region on its own
// lock, so pipeline stages and ring segments proceed concurrently; the
// "workers" variant additionally posts cross-region nudges to a
// GOMAXPROCS worker pool (reo.WithWorkers) so region fires are not
// serialized on the nudging goroutine either.
package reo_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	reo "repro"
	"repro/internal/connlib"
)

// scalingWindow is the per-iteration measurement budget.
const scalingWindow = 50 * time.Millisecond

// ringProto is a multi-token ring: every other segment starts full, so
// up to N/2 hops can fire concurrently (the single-token Sequencer is
// inherently serial; this shape exposes the parallelism regions unlock).
const ringProto = `
Ring(;c[]) =
    prod (i:1..#c) Replicator(r[i];c[i],s[i])
    mult prod (i:1..#c/2) Fifo1Full(s[2*i-1];r[2*i])
    mult prod (i:1..#c/2) Fifo1(s[2*i];r[(2*i)%#c+1])
`

// drivePipeline free-runs the stage-coupled pipeline until the instance
// closes; returns a waiter.
func drivePipeline(inst *reo.Instance, n int) func() {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("in")[i]
			out := inst.Outports("out")[i]
			for {
				v, err := in.Recv()
				if err != nil {
					return
				}
				if out.Send(v) != nil {
					return
				}
			}
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		src := inst.Outport("src")
		for k := 0; src.Send(k) == nil; k++ {
		}
	}()
	go func() {
		defer wg.Done()
		snk := inst.Inport("snk")
		for {
			if _, err := snk.Recv(); err != nil {
				return
			}
		}
	}()
	return wg.Wait
}

// driveReceivers free-runs one receiver per port of param c.
func driveReceivers(inst *reo.Instance, param string) func() {
	var wg sync.WaitGroup
	for _, in := range inst.Inports(param) {
		wg.Add(1)
		go func(in reo.Inport) {
			defer wg.Done()
			for {
				if _, err := in.Recv(); err != nil {
					return
				}
			}
		}(in)
	}
	return wg.Wait
}

func BenchmarkRegionScaling(b *testing.B) {
	const n = 8
	modes := []struct {
		name string
		opts []reo.ConnectOption
	}{
		{"off", []reo.ConnectOption{reo.WithPartitioning(reo.PartitionOff)}},
		{"components", []reo.ConnectOption{reo.WithPartitioning(reo.PartitionComponents)}},
		{"regions", []reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions)}},
		// The worker scheduler: cross-region nudges become wake-ups on a
		// GOMAXPROCS-sized pool instead of inline draining, so region
		// fires occupy every core (compare against "regions" at -cpu 4,8
		// for the scaling the scheduler buys).
		{"workers", []reo.ConnectOption{reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(-1)}},
	}

	type setup struct {
		name    string
		connect func(opts ...reo.ConnectOption) (*reo.Instance, func(), error)
	}
	setups := []setup{
		{"pipeline", func(opts ...reo.ConnectOption) (*reo.Instance, func(), error) {
			prog, err := reo.Compile(pipelineProto)
			if err != nil {
				return nil, nil, err
			}
			conn, err := prog.Connector("Pipeline")
			if err != nil {
				return nil, nil, err
			}
			inst, err := conn.Connect(map[string]int{"out": n, "in": n}, opts...)
			if err != nil {
				return nil, nil, err
			}
			return inst, drivePipeline(inst, n), nil
		}},
		{"ring", func(opts ...reo.ConnectOption) (*reo.Instance, func(), error) {
			prog, err := reo.Compile(ringProto)
			if err != nil {
				return nil, nil, err
			}
			conn, err := prog.Connector("Ring")
			if err != nil {
				return nil, nil, err
			}
			inst, err := conn.Connect(map[string]int{"c": n}, opts...)
			if err != nil {
				return nil, nil, err
			}
			return inst, driveReceivers(inst, "c"), nil
		}},
		{"async-merger", func(opts ...reo.ConnectOption) (*reo.Instance, func(), error) {
			d, err := connlib.ByName("EarlyAsyncMerger")
			if err != nil {
				return nil, nil, err
			}
			inst, err := d.Connect(n, opts...)
			if err != nil {
				return nil, nil, err
			}
			return inst, connlib.Drive(d, inst, n), nil
		}},
	}

	for _, s := range setups {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", s.name, m.name), func(b *testing.B) {
				var totalSteps int64
				var totalTime time.Duration
				regions, workers := 0, 0
				for i := 0; i < b.N; i++ {
					inst, wait, err := s.connect(m.opts...)
					if err != nil {
						b.Fatal(err)
					}
					regions, workers = inst.Partitions(), inst.Workers()
					time.Sleep(scalingWindow)
					totalSteps += inst.Steps()
					totalTime += scalingWindow
					inst.Close()
					wait()
				}
				b.ReportMetric(float64(totalSteps)/totalTime.Seconds(), "steps/s")
				b.ReportMetric(float64(regions), "regions")
				b.ReportMetric(float64(workers), "workers")
			})
		}
	}
}
