// Pipeline: N worker stages connected by buffered lanes, with a
// sequencer-gated, ordered merge of progress reports into a monitor —
// two protocols composed in one program, each a separate module.
//
// Stage i transforms every item (here: multiply-accumulate on integers)
// and passes it on; every stage also reports each processed item to a
// monitor, and the connector — not the tasks — guarantees the monitor
// sees reports in stage order for every item.
//
// The run executes once in the default single-engine mode and once under
// WithPartitioning(PartitionRegions): the lanes protocol splits at its
// buffers into concurrently firing regions (one per stage boundary), and
// Instance.Regions() exposes the per-region execution counters.
//
// A second, quiet phase compares coordination throughput of the same
// Lanes protocol with scalar port operations vs batched ones
// (SendBatch/RecvBatch, -batch items per operation), printing steps/s
// side by side: the batched run pays one engine-lock registration and
// one completion handshake per batch instead of per item.
//
//	go run ./examples/pipeline -n 4 -items 5 -batch 64
package main

import (
	"flag"
	"fmt"
	"log"
	reo "repro"
	"repro/internal/bench"
)

const protocol = `
// Stage-to-stage lanes: src feeds stage 1, stage i feeds i+1, stage N
// feeds the sink. One buffered lane per hop.
Lanes(src,out[];in[],snk) =
    Fifo1(src;in[1])
    mult prod (i:1..#out-1) Fifo1(out[i];in[i+1])
    mult Fifo1(out[#out];snk)

// Ordered progress reports: per item, the monitor must receive the
// stage-1 report first, then stage 2's, ... — an Alternator-style merge.
Reports(rep[];mon) =
    prod (i:1..#rep) Fifo1(rep[i];f[i])
    mult Merger(f[1..#rep];mon)
    mult Seq(f[1..#rep];)
`

func main() {
	n := flag.Int("n", 4, "number of pipeline stages")
	items := flag.Int("items", 5, "items pushed through the pipeline")
	batch := flag.Int("batch", 64, "batch size of the scalar-vs-batched throughput comparison")
	benchItems := flag.Int("bench-items", 50000, "items moved per throughput measurement")
	flag.Parse()

	if *batch < 1 || *benchItems < 1 {
		log.Fatalf("pipeline: -batch and -bench-items must be >= 1 (got %d, %d)", *batch, *benchItems)
	}
	prog, err := reo.Compile(protocol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== single engine (PartitionOff) ==")
	run(prog, *n, *items, reo.PartitionOff)
	fmt.Println("\n== asynchronous regions (PartitionRegions) ==")
	run(prog, *n, *items, reo.PartitionRegions)
	fmt.Println("\n== worker scheduler (PartitionRegions + WithWorkers) ==")
	run(prog, *n, *items, reo.PartitionRegions, reo.WithWorkers(-1))

	fmt.Printf("\n== scalar vs batched ports (%d stages, %d items) ==\n", *n, *benchItems)
	scalarRate := throughput(*n, *benchItems, 1)
	batchedRate := throughput(*n, *benchItems, *batch)
	fmt.Printf("scalar  (batch=1):   %12.0f steps/s\n", scalarRate)
	fmt.Printf("batched (batch=%d): %12.0f steps/s  (%.1fx)\n", *batch, batchedRate, batchedRate/scalarRate)
}

// throughput runs the shared batched-pipeline workload (the same pump
// behind BenchmarkBatchedThroughput and `reoc bench-batch`) and returns
// global execution steps per second.
func throughput(n, items, batch int) float64 {
	res, err := bench.RunBatchThroughput(n, items, batch)
	if err != nil {
		log.Fatal(err)
	}
	return float64(res.Steps) / res.Elapsed.Seconds()
}

func run(prog *reo.Program, n, items int, mode reo.PartitionMode, extra ...reo.ConnectOption) {
	opts := append([]reo.ConnectOption{reo.WithPartitioning(mode)}, extra...)
	lanes, err := prog.Connector("Lanes")
	if err != nil {
		log.Fatal(err)
	}
	lanesInst, err := lanes.Connect(map[string]int{"out": n, "in": n}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer lanesInst.Close()
	reports, err := prog.Connector("Reports")
	if err != nil {
		log.Fatal(err)
	}
	repInst, err := reports.Connect(map[string]int{"rep": n}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer repInst.Close()

	done := make(chan struct{})

	// Stages: pure computation plus port operations.
	for i := 0; i < n; i++ {
		go func(i int) {
			in := lanesInst.Inports("in")[i]
			out := lanesInst.Outports("out")[i]
			rep := repInst.Outports("rep")[i]
			for {
				v, err := in.Recv()
				if err != nil {
					return
				}
				next := v.(int)*2 + 1
				if err := rep.Send(fmt.Sprintf("stage %d: %d -> %d", i+1, v, next)); err != nil {
					return
				}
				if err := out.Send(next); err != nil {
					return
				}
			}
		}(i)
	}

	// Monitor: the connector enforces stage order per item.
	go func() {
		for {
			v, err := repInst.Inport("mon").Recv()
			if err != nil {
				return
			}
			fmt.Println(v)
		}
	}()

	// Source and sink.
	go func() {
		src := lanesInst.Outport("src")
		for k := 1; k <= items; k++ {
			if err := src.Send(k); err != nil {
				return
			}
		}
	}()
	go func() {
		snk := lanesInst.Inport("snk")
		for k := 0; k < items; k++ {
			v, err := snk.Recv()
			if err != nil {
				return
			}
			fmt.Printf("result %d: %v\n", k+1, v)
		}
		close(done)
	}()

	<-done
	fmt.Printf("lanes: %d steps over %d partition(s); reports: %d steps over %d partition(s)\n",
		lanesInst.Steps(), lanesInst.Partitions(), repInst.Steps(), repInst.Partitions())
	if mode == reo.PartitionRegions {
		if w := lanesInst.Workers(); w > 0 {
			fmt.Printf("  scheduler: %d worker(s) for lanes, %d for reports\n", w, repInst.Workers())
		}
		for ri, info := range lanesInst.Regions() {
			fmt.Printf("  lanes region %d: %d constituents, %d link endpoint(s), %d steps%s\n",
				ri, info.Constituents, info.Links, info.Steps, workerTag(info))
		}
		for ri, info := range repInst.Regions() {
			fmt.Printf("  reports region %d: %d constituents, %d link endpoint(s), %d steps%s\n",
				ri, info.Constituents, info.Links, info.Steps, workerTag(info))
		}
	}
}

// workerTag renders a region's home-worker assignment when it runs on
// the scheduler pool.
func workerTag(info reo.RegionInfo) string {
	if info.Worker < 0 {
		return ""
	}
	return fmt.Sprintf(", worker %d", info.Worker)
}
