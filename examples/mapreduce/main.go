// Map-reduce: master–slaves scatter/gather through a connector, using the
// library API directly (no main definition). The master scatters chunks
// of a word list; slaves count word lengths; the master reduces the
// histograms — the communication structure of the paper's NPB experiments
// (§V-C) in miniature.
//
//	go run ./examples/mapreduce -n 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	reo "repro"
)

// The protocol: one buffered lane per direction per slave, as a single
// reusable connector definition (compare: with raw channels this wiring
// pattern would be re-implemented inside every program).
const protocol = `
MasterSlaves(mo[],so[];si[],mi[]) =
    prod (i:1..#mo) Fifo1(mo[i];si[i])
    mult prod (i:1..#so) Fifo1(so[i];mi[i])
`

const corpus = `separation of concerns entails dividing a parallel program into
syntactically separate task modules and protocol modules every task module
encapsulates a task every protocol module encapsulates synchronization and
communication between those tasks`

func main() {
	n := flag.Int("n", 4, "number of slaves")
	flag.Parse()

	prog, err := reo.Compile(protocol)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := prog.Connector("MasterSlaves")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := conn.Connect(map[string]int{"mo": *n, "so": *n, "si": *n, "mi": *n})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	words := strings.Fields(corpus)
	var wg sync.WaitGroup

	// Slaves: receive a chunk, histogram word lengths, send it back.
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("si")[i]
			out := inst.Outports("so")[i]
			v, err := in.Recv()
			if err != nil {
				return
			}
			hist := map[int]int{}
			for _, w := range v.([]string) {
				hist[len(w)]++
			}
			out.Send(hist)
		}(i)
	}

	// Master: scatter chunks, gather and reduce histograms.
	total := map[int]int{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < *n; i++ {
			lo := i * len(words) / *n
			hi := (i + 1) * len(words) / *n
			if err := inst.Outports("mo")[i].Send(words[lo:hi]); err != nil {
				return
			}
		}
		for i := 0; i < *n; i++ {
			v, err := inst.Inports("mi")[i].Recv()
			if err != nil {
				return
			}
			for k, c := range v.(map[int]int) {
				total[k] += c
			}
		}
	}()
	wg.Wait()

	fmt.Println("word-length histogram:")
	for l := 1; l <= 16; l++ {
		if c := total[l]; c > 0 {
			fmt.Printf("  %2d: %s (%d)\n", l, strings.Repeat("#", c), c)
		}
	}
	fmt.Printf("connector made %d global steps\n", inst.Steps())
}
