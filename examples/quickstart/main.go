// Quickstart: the paper's running example (Example 1 / Example 8).
//
// N producer tasks each send messages to one consumer task; the protocol
// — producer 1's message must reach the consumer before producer 2's, and
// so on, round-robin — lives entirely in the connector definition. The
// tasks contain no synchronization code at all: they just send and
// receive on their ports.
//
// The example runs on either connector backend (see README.md for the
// full walkthrough):
//
//	go run ./examples/quickstart -n 5                      # interpreted
//	go run ./examples/quickstart -backend generated        # reoc gen output
//
// The interpreted backend compiles the protocol at run time and
// executes it on the engine; the generated backend imports the
// statically compiled package in ./genordered (emitted by `reoc gen`
// from ordered.reo at N=3) and runs the same tasks over it — the
// protocol has become plain Go control flow, with no automata left at
// run time.
package main

import (
	"flag"
	"fmt"
	"log"

	reo "repro"

	"repro/examples/quickstart/genordered"
)

// The protocol module (Fig. 9 of the paper): parametric in the number of
// producers. X buffers a producer's message and exposes ordering hooks
// (prev/next) that the Seq primitives chain into a global round-robin.
// ordered.reo holds the same definitions for `reoc gen`.
const protocol = `
X(tl;prev,next,hd) =
    Replicator(tl;prev,v) mult Fifo1(v;w) mult Replicator(w;next,hd)

Ordered(tl[];hd[]) =
    if (#tl == 1) {
        Fifo1(tl[1];hd[1])
    } else {
        prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
        mult prod (i:1..#tl-1) Seq(next[i],prev[i+1];)
        mult Seq(prev[1],next[#tl];)
    }

main(N) = Ordered(out[1..N];in[1..N]) among
    forall (i:1..N) Tasks.producer(out[i]) and Tasks.consumer(in[1..N])
`

func main() {
	n := flag.Int("n", 4, "number of producers (interpreted backend; the generated backend is compiled for N=3)")
	rounds := flag.Int("rounds", 3, "messages per producer")
	backend := flag.String("backend", "interpreted", "connector backend: interpreted | generated")
	flag.Parse()

	switch *backend {
	case "interpreted":
		runInterpreted(*n, *rounds)
	case "generated":
		runGenerated(*rounds)
	default:
		log.Fatalf("unknown -backend %q (want interpreted or generated)", *backend)
	}
}

// runInterpreted compiles the protocol at run time and executes the
// main definition on the engine.
func runInterpreted(n, rounds int) {
	prog, err := reo.Compile(protocol)
	if err != nil {
		log.Fatal(err)
	}

	// The task modules: no locks, no channels, no auxiliary messages —
	// only port operations (the generalized Foster-Chandy model).
	tasks := reo.Tasks{
		"Tasks.producer": func(tp reo.TaskPorts) error {
			out := tp.Outs[0]
			for r := 0; r < rounds; r++ {
				if err := out.Send(fmt.Sprintf("%s says hello (round %d)", out.Name(), r)); err != nil {
					return err
				}
			}
			return nil
		},
		"Tasks.consumer": func(tp reo.TaskPorts) error {
			for r := 0; r < rounds; r++ {
				for _, in := range tp.Ins {
					v, err := in.Recv()
					if err != nil {
						return err
					}
					fmt.Println("consumer got:", v)
				}
			}
			return nil
		},
	}

	res, err := prog.Run(map[string]int{"N": n}, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndone: %d tasks, %d global connector steps\n", res.TaskCount, res.Steps)
}

// runGenerated executes the identical producer/consumer tasks over the
// statically compiled connector: same protocol, same round-robin
// delivery order, but every transition is a specialized Go function in
// package genordered. The boundary vertices carry the connector's own
// parameter names (tl/hd instead of the main definition's out/in).
func runGenerated(rounds int) {
	inst, err := genordered.New()
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	producers := inst.Ports("tl")
	done := make(chan error, len(producers))
	for _, port := range producers {
		out := inst.Outport(port)
		go func() {
			for r := 0; r < rounds; r++ {
				if err := out.Send(fmt.Sprintf("%s says hello (round %d)", out.Name(), r)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for r := 0; r < rounds; r++ {
		for _, port := range inst.Ports("hd") {
			v, err := inst.Inport(port).Recv()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("consumer got:", v)
		}
	}
	for range producers {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ndone: %d tasks, %d global connector steps (generated backend, %d states / %d transitions compiled)\n",
		len(producers)+1, inst.Steps(), inst.States(), inst.Transitions())
}
