// Differential tests for asynchronous-region partitioning: for
// deterministic protocols, PartitionRegions must deliver exactly the
// per-port value sequences of the single-engine run — the observational
// equivalence the region cut promises (cross-region interleaving may
// differ, per-port sequences may not).
package reo_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	reo "repro"
	"repro/internal/connlib"
)

// pipelineProto is a stage-coupled pipeline: one buffered lane per hop,
// tasks attached between hops (the examples/pipeline "Lanes" shape).
const pipelineProto = `
Pipeline(src,out[];in[],snk) =
    Fifo1(src;in[1])
    mult prod (i:1..#out-1) Fifo1(out[i];in[i+1])
    mult Fifo1(out[#out];snk)
`

// runPipeline pushes items through an n-stage pipeline (each stage
// applies a tagged transformation) and returns the sink sequence plus
// each stage's observed input sequence.
func runPipeline(t *testing.T, n, items int, opts ...reo.ConnectOption) (sink []any, stages [][]any) {
	t.Helper()
	prog := reo.MustCompile(pipelineProto)
	conn := prog.MustConnector("Pipeline")
	inst, err := conn.Connect(map[string]int{"out": n, "in": n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	stages = make([][]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("in")[i]
			out := inst.Outports("out")[i]
			for k := 0; k < items; k++ {
				v, err := in.Recv()
				if err != nil {
					t.Errorf("stage %d recv: %v", i, err)
					return
				}
				stages[i] = append(stages[i], v)
				if err := out.Send(v.(int)*10 + i); err != nil {
					t.Errorf("stage %d send: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := inst.Outport("src")
		for k := 1; k <= items; k++ {
			if err := src.Send(k); err != nil {
				t.Errorf("src send: %v", err)
				return
			}
		}
	}()
	snk := inst.Inport("snk")
	for k := 0; k < items; k++ {
		v, err := snk.Recv()
		if err != nil {
			t.Fatal(err)
		}
		sink = append(sink, v)
	}
	wg.Wait()
	return sink, stages
}

// runPipelineBatched is runPipeline with every task moving values
// through its ports in batches of the given size (ragged tail batches
// included), reusing one slice per task. batch=1 still exercises the
// batched entry points, pinning them to the scalar path's behavior.
func runPipelineBatched(t *testing.T, n, items, batch int, opts ...reo.ConnectOption) (sink []any, stages [][]any) {
	t.Helper()
	prog := reo.MustCompile(pipelineProto)
	conn := prog.MustConnector("Pipeline")
	inst, err := conn.Connect(map[string]int{"out": n, "in": n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	stages = make([][]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst.Inports("in")[i]
			out := inst.Outports("out")[i]
			buf := make([]any, batch)
			for done := 0; done < items; {
				k := batch
				if items-done < k {
					k = items - done
				}
				got, err := in.RecvBatch(buf[:k])
				if err != nil {
					t.Errorf("stage %d recv: %v", i, err)
					return
				}
				stages[i] = append(stages[i], buf[:got]...)
				for j := 0; j < got; j++ {
					buf[j] = buf[j].(int)*10 + i
				}
				if err := out.SendBatch(buf[:got]); err != nil {
					t.Errorf("stage %d send: %v", i, err)
					return
				}
				done += got
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := inst.Outport("src")
		vs := make([]any, batch)
		for sent := 0; sent < items; {
			k := batch
			if items-sent < k {
				k = items - sent
			}
			for j := 0; j < k; j++ {
				vs[j] = sent + j + 1
			}
			if err := src.SendBatch(vs[:k]); err != nil {
				t.Errorf("src send: %v", err)
				return
			}
			sent += k
		}
	}()
	snk := inst.Inport("snk")
	buf := make([]any, batch)
	for got := 0; got < items; {
		k := batch
		if items-got < k {
			k = items - got
		}
		m, err := snk.RecvBatch(buf[:k])
		if err != nil {
			t.Fatal(err)
		}
		sink = append(sink, buf[:m]...)
		got += m
	}
	wg.Wait()
	return sink, stages
}

// TestBatchedDifferential pins the tentpole's observational equivalence:
// for the deterministic pipeline protocol, batched port operations must
// deliver exactly the per-port value sequences of the scalar run, across
// every partition mode, with and without the worker scheduler, and for
// batch sizes that divide the stream raggedly.
func TestBatchedDifferential(t *testing.T) {
	const n, items = 4, 40
	wantSink, wantStages := runPipeline(t, n, items, reo.WithSeed(1))
	modes := []struct {
		name string
		opts []reo.ConnectOption
	}{
		{"off", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionOff)}},
		{"components", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionComponents)}},
		{"regions", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions)}},
		// WithWorkers outside PartitionRegions is an eager OptionError now
		// (api_test.go); only the regions runtimes are exercised here.
		{"regions+workers", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(-1)}},
		{"regions+runtime", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil)}},
		{"regions+runtime+reuse", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil), reo.WithReuse(true)}},
	}
	for _, m := range modes {
		for _, batch := range []int{1, 3, 8, 64} {
			gotSink, gotStages := runPipelineBatched(t, n, items, batch, m.opts...)
			if fmt.Sprint(gotSink) != fmt.Sprint(wantSink) {
				t.Errorf("%s/batch=%d: sink sequence differs:\nbatched: %v\nscalar:  %v\n%s",
					m.name, batch, gotSink, wantSink, reproCmd(t, 1))
			}
			for i := range wantStages {
				if fmt.Sprint(gotStages[i]) != fmt.Sprint(wantStages[i]) {
					t.Errorf("%s/batch=%d: stage %d input sequence differs:\nbatched: %v\nscalar:  %v\n%s",
						m.name, batch, i, gotStages[i], wantStages[i], reproCmd(t, 1))
				}
			}
		}
	}
}

// TestBatchedDifferentialAlternator checks a connector whose merge order
// is protocol-forced: the strict cyclic output sequence must survive
// batched senders of unequal batch sizes.
func TestBatchedDifferentialAlternator(t *testing.T) {
	const n, rounds = 4, 24
	want := runAlternator(t, n, rounds, reo.WithSeed(7))
	d, err := connlib.ByName("Alternator")
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 5} {
		inst, err := d.Connect(n, reo.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i, out := range inst.Outports("in") {
			wg.Add(1)
			go func(i int, out reo.Outport) {
				defer wg.Done()
				vs := make([]any, batch)
				for r := 0; r < rounds; {
					k := batch
					if rounds-r < k {
						k = rounds - r
					}
					for j := 0; j < k; j++ {
						vs[j] = (i+1)*1000 + r + j
					}
					if err := out.SendBatch(vs[:k]); err != nil {
						t.Errorf("sender %d: %v", i, err)
						return
					}
					r += k
				}
			}(i, out)
		}
		var got []any
		in := inst.Inport("out")
		buf := make([]any, 3)
		for len(got) < n*rounds {
			k := n*rounds - len(got)
			if k > len(buf) {
				k = len(buf)
			}
			m, err := in.RecvBatch(buf[:k])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, buf[:m]...)
		}
		wg.Wait()
		inst.Close()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("batch=%d: output sequence differs:\nbatched: %v\nscalar:  %v\n%s", batch, got, want, reproCmd(t, 7))
		}
	}
}

func TestRegionsDifferentialPipeline(t *testing.T) {
	const n, items = 4, 40
	wantSink, wantStages := runPipeline(t, n, items, reo.WithSeed(1))
	modes := []struct {
		name string
		opts []reo.ConnectOption
	}{
		{"synchronous", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions)}},
		{"workers", []reo.ConnectOption{reo.WithSeed(1), reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(-1)}},
	}
	for _, m := range modes {
		gotSink, gotStages := runPipeline(t, n, items, m.opts...)
		if fmt.Sprint(gotSink) != fmt.Sprint(wantSink) {
			t.Errorf("%s: sink sequence differs:\nregions: %v\nsingle:  %v\n%s", m.name, gotSink, wantSink, reproCmd(t, 1))
		}
		for i := range wantStages {
			if fmt.Sprint(gotStages[i]) != fmt.Sprint(wantStages[i]) {
				t.Errorf("%s: stage %d input sequence differs:\nregions: %v\nsingle:  %v\n%s",
					m.name, i, gotStages[i], wantStages[i], reproCmd(t, 1))
			}
		}
	}
}

// runAlternator drives connlib's Alternator (senders tag their values)
// and returns the merged output sequence, which the connector forces
// into strict cyclic sender order.
func runAlternator(t *testing.T, n, rounds int, opts ...reo.ConnectOption) []any {
	t.Helper()
	d, err := connlib.ByName("Alternator")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Connect(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	var wg sync.WaitGroup
	for i, out := range inst.Outports("in") {
		wg.Add(1)
		go func(i int, out reo.Outport) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := out.Send((i+1)*1000 + r); err != nil {
					t.Errorf("sender %d: %v", i, err)
					return
				}
			}
		}(i, out)
	}
	var got []any
	in := inst.Inport("out")
	for k := 0; k < n*rounds; k++ {
		v, err := in.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	wg.Wait()
	return got
}

func TestRegionsDifferentialAlternator(t *testing.T) {
	const n, rounds = 4, 20
	want := runAlternator(t, n, rounds, reo.WithSeed(7))
	got := runAlternator(t, n, rounds, reo.WithSeed(7),
		reo.WithPartitioning(reo.PartitionRegions))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("output sequence differs:\nregions: %v\nsingle:  %v\n%s", got, want, reproCmd(t, 7))
	}
	gotW := runAlternator(t, n, rounds, reo.WithSeed(7),
		reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(2))
	if fmt.Sprint(gotW) != fmt.Sprint(want) {
		t.Errorf("output sequence differs:\nworkers: %v\nsingle:  %v\n%s", gotW, want, reproCmd(t, 7))
	}
}

// TestWorkersInstanceSurface pins the public worker-scheduler surface:
// Workers() reporting, per-region Worker assignment, and Close of a
// live worker instance.
func TestWorkersInstanceSurface(t *testing.T) {
	d, err := connlib.ByName("Sequencer")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.Connect(4, reo.WithPartitioning(reo.PartitionRegions), reo.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	wait := connlib.Drive(d, inst, 4)
	time.Sleep(30 * time.Millisecond)
	if inst.Workers() != 2 {
		t.Errorf("Workers() = %d, want 2", inst.Workers())
	}
	for ri, info := range inst.Regions() {
		if info.Worker < 0 || info.Worker >= 2 {
			t.Errorf("region %d: worker %d out of range [0,2)", ri, info.Worker)
		}
	}
	if inst.Steps() == 0 {
		t.Error("no steps fired on the worker pool")
	}
	inst.Close()
	wait()

	// Without workers (and without region partitioning) the surface
	// reports no pool and no assignment.
	single, err := d.Connect(4)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.Workers() != 0 {
		t.Errorf("single-engine Workers() = %d, want 0", single.Workers())
	}
	if got := single.Regions()[0].Worker; got != -1 {
		t.Errorf("single-engine region worker = %d, want -1", got)
	}
}

// TestRegionCounts pins the region decomposition of the cut-friendly
// connlib connectors at N=8 (the acceptance shape: pipeline/ring-style
// connectors must split into ≥ 2 regions).
func TestRegionCounts(t *testing.T) {
	cases := []struct {
		connector string
		regions   int
	}{
		{"Sequencer", 8},        // one region per drain, ring of links
		{"TokenRing", 8},        // one region per replicator
		{"Alternator", 2},       // drain chain | merge side
		{"EarlyAsyncMerger", 9}, // 8 source nodes + merger
		{"LateAsyncMerger", 2},
		{"Discriminator", 9},
		// Single-region connectors: every buffer is either spanned by
		// synchronous couplings or folded into a compile-time medium
		// product (Lock's Fifo1Full shares a level with its SyncDrain).
		{"Lock", 1},
		{"Barrier", 1},
		{"OrderedMany2One", 1},
	}
	for _, c := range cases {
		d, err := connlib.ByName(c.connector)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := d.Connect(8, reo.WithPartitioning(reo.PartitionRegions))
		if err != nil {
			t.Fatalf("%s: %v", c.connector, err)
		}
		if got := inst.Partitions(); got != c.regions {
			t.Errorf("%s at N=8: %d regions, want %d", c.connector, got, c.regions)
		}
		inst.Close()
	}

	// The pipeline protocol splits at every lane.
	prog := reo.MustCompile(pipelineProto)
	inst, err := prog.MustConnector("Pipeline").Connect(
		map[string]int{"out": 8, "in": 8}, reo.WithPartitioning(reo.PartitionRegions))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if got := inst.Partitions(); got < 2 {
		t.Errorf("Pipeline at N=8: %d regions, want >= 2", got)
	}
}

// TestRegionsInstanceStats exercises the public Regions() surface under
// all three partition modes.
func TestRegionsInstanceStats(t *testing.T) {
	d, err := connlib.ByName("Sequencer")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []reo.PartitionMode{reo.PartitionOff, reo.PartitionComponents, reo.PartitionRegions} {
		inst, err := d.Connect(4, reo.WithPartitioning(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		wait := connlib.Drive(d, inst, 4)
		time.Sleep(30 * time.Millisecond)
		inst.Close()
		wait()
		// Snapshot after Close: the engines are quiescent, so the
		// per-region sums must match the aggregate exactly.
		infos := inst.Regions()
		if len(infos) != inst.Partitions() {
			t.Errorf("%v: Regions() has %d entries, Partitions() = %d", mode, len(infos), inst.Partitions())
		}
		var steps int64
		links := 0
		for _, in := range infos {
			steps += in.Steps
			links += in.Links
		}
		if steps != inst.Steps() {
			t.Errorf("%v: region steps sum %d != instance steps %d", mode, steps, inst.Steps())
		}
		if mode == reo.PartitionRegions {
			if links == 0 {
				t.Errorf("%v: no link endpoints reported", mode)
			}
			if inst.Partitions() != 4 {
				t.Errorf("%v: partitions = %d, want 4", mode, inst.Partitions())
			}
		} else if links != 0 {
			t.Errorf("%v: links = %d, want 0", mode, links)
		}
	}
}

// TestComponentPartitioning pins PartitionComponents splitting disjoint
// buffers into one engine each (the combination the removed boolean
// shim used to select).
func TestComponentPartitioning(t *testing.T) {
	prog := reo.MustCompile(`Buffers(in[];out[]) = prod (i:1..#in) Fifo1(in[i];out[i])`)
	inst, err := prog.MustConnector("Buffers").Connect(
		map[string]int{"in": 3, "out": 3}, reo.WithPartitioning(reo.PartitionComponents))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Partitions() != 3 {
		t.Errorf("partitions = %d, want 3 (one component per disjoint buffer)", inst.Partitions())
	}
}
