// Pooled-instance reuse tests: a recycled instance (reo.WithReuse) must
// be observationally identical to a fresh one — same per-port value
// sequences under the deterministic gendrv schedule, same Steps and
// GuardEvals — and the steady-state Connect/Close cycle must stay
// alloc-cheap (the reason the pool exists).
package reo_test

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	reo "repro"
	"repro/internal/connlib"
	"repro/internal/explore"
	"repro/internal/gen/gendrv"
)

// reuseOpts is the serving configuration: shared process runtime,
// pooled recycling. The seed pins the router's choices.
func reuseOpts() []reo.ConnectOption {
	return []reo.ConnectOption{
		reo.WithSeed(7),
		reo.WithPartitioning(reo.PartitionRegions),
		reo.WithRuntime(nil),
		reo.WithReuse(true),
	}
}

// TestReuseDifferential drives the seeded LateAsyncRouter (a connector
// whose rng choices are observable in which output each value lands
// on) through the deterministic schedule, recycling the instance
// between runs: every recycled run must reproduce the fresh run's
// per-port sequences and counters exactly.
func TestReuseDifferential(t *testing.T) {
	d, err := connlib.ByName("LateAsyncRouter")
	if err != nil {
		t.Fatal(err)
	}
	const n, rounds = 3, 6
	run := func() *gendrv.Result {
		t.Helper()
		inst, err := d.Connect(n, reuseOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gendrv.Drive(inst.Backend(), "one2many", n, rounds)
		if err != nil {
			t.Fatal(err)
		}
		inst.Close() // recycles into the template pool
		return res
	}
	fresh := run()
	for round := 0; round < 3; round++ {
		recycled := run()
		if !reflect.DeepEqual(fresh.Seqs, recycled.Seqs) {
			t.Errorf("round %d: per-port sequences differ\nfresh:    %v\nrecycled: %v\n%s",
				round, fresh.Seqs, recycled.Seqs, reproCmd(t, 7))
		}
		if fresh.Steps != recycled.Steps {
			t.Errorf("round %d: steps differ: fresh %d, recycled %d\n%s", round, fresh.Steps, recycled.Steps, reproCmd(t, 7))
		}
		if fresh.GuardEvals != recycled.GuardEvals {
			t.Errorf("round %d: guard evals differ: fresh %d, recycled %d\n%s", round, fresh.GuardEvals, recycled.GuardEvals, reproCmd(t, 7))
		}
	}
}

// TestReuseCounterResetAndStats: a recycled instance starts with zeroed
// step counters, and the pool only serves instances of the matching
// template and options.
func TestReuseCounterReset(t *testing.T) {
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn, err := prog.Connector("Lane")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := conn.Connect(nil, reuseOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Outport("a").Send(1); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Inport("b").Recv(); err != nil {
		t.Fatal(err)
	}
	if inst.Steps() == 0 {
		t.Fatal("no steps before recycle")
	}
	inst.Close()
	re, err := conn.Connect(nil, reuseOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Steps() != 0 {
		t.Errorf("recycled Steps() = %d, want 0", re.Steps())
	}
	if re.GuardEvals() != 0 {
		t.Errorf("recycled GuardEvals() = %d, want 0", re.GuardEvals())
	}
	// The recycled instance works end to end.
	if err := re.Outport("a").Send("v"); err != nil {
		t.Fatal(err)
	}
	if v, err := re.Inport("b").Recv(); err != nil || v != "v" {
		t.Fatalf("recycled recv = %v, %v", v, err)
	}
}

// TestConnectCloseAllocs pins the steady-state serving churn: once the
// pool is warm, a full Connect → Send → Recv → Close cycle on the
// shared runtime must cost at most 2 allocations.
func TestConnectCloseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn, err := prog.Connector("Lane")
	if err != nil {
		t.Fatal(err)
	}
	opts := reuseOpts() // hoisted: option building is per-config, not per-cycle
	cycle := func() {
		inst, err := conn.Connect(nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Outport("a").Send(7); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Inport("b").Recv(); err != nil {
			t.Fatal(err)
		}
		inst.Close()
	}
	cycle() // warm the pool
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 2 {
		t.Errorf("Connect/Close cycle allocates %.1f times, want <= 2", allocs)
	}
}

// TestManyInstancesFireAllocs pins the steady-state fire path with many
// live instances multiplexed on the shared runtime at zero allocations
// per op.
func TestManyInstancesFireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn, err := prog.Connector("Lane")
	if err != nil {
		t.Fatal(err)
	}
	const live = 64
	type lane struct {
		out reo.Outport
		in  reo.Inport
	}
	lanes := make([]lane, live)
	for i := range lanes {
		inst, err := conn.Connect(nil,
			reo.WithPartitioning(reo.PartitionRegions), reo.WithRuntime(nil))
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Close()
		lanes[i] = lane{out: inst.Outport("a"), in: inst.Inport("b")}
		// Warm the instance's composite states and op pool.
		if err := lanes[i].out.Send(0); err != nil {
			t.Fatal(err)
		}
		if _, err := lanes[i].in.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	fire := func() {
		l := lanes[next%live]
		next++
		if err := l.out.Send(7); err != nil {
			t.Fatal(err)
		}
		if _, err := l.in.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(1000, fire); allocs != 0 {
		t.Errorf("steady-state fire allocates %.2f times, want 0", allocs)
	}
}

// TestChurnAllocGrowth is the nightly leak gate: many thousands of
// Connect → fire → Close cycles on the shared runtime with pooled
// reuse must not grow the live heap — the pool recycles, it does not
// accumulate. Gated on NIGHTLY_CHURN_CYCLES because a meaningful cycle
// count is too slow for the PR gate; per-cycle alloc counts are pinned
// there by TestConnectCloseAllocs instead. Run without -race: the
// detector's shadow memory inflates heap accounting.
func TestChurnAllocGrowth(t *testing.T) {
	cycles, _ := strconv.Atoi(os.Getenv("NIGHTLY_CHURN_CYCLES"))
	if cycles <= 0 {
		t.Skip("set NIGHTLY_CHURN_CYCLES to run the churn leak gate (nightly CI)")
	}
	if raceEnabled {
		t.Skip("heap accounting is distorted under the race detector")
	}
	prog := reo.MustCompile(`Lane(a;b) = Fifo1(a;b)`)
	conn, err := prog.Connector("Lane")
	if err != nil {
		t.Fatal(err)
	}
	opts := reuseOpts()
	cycle := func(i int) {
		inst, err := conn.Connect(nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Outport("a").Send(i); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Inport("b").Recv(); err != nil {
			t.Fatal(err)
		}
		inst.Close()
	}
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	for i := 0; i < 100; i++ { // warm the pool and the runtime's steady state
		cycle(i)
	}
	before := heap()
	for i := 0; i < cycles; i++ {
		cycle(i)
	}
	after := heap()
	const limit = 4 << 20
	if after > before && after-before > limit {
		t.Errorf("live heap grew %d bytes over %d Connect/Close cycles (limit %d): the reuse pool is leaking",
			after-before, cycles, limit)
	}
	t.Logf("churn: %d cycles, heap %d -> %d bytes", cycles, before, after)
}

// TestReuseExploreSchedules extends the recycling contract to the
// adversarial corpus: for explorer-generated connectors driven over
// explorer-generated schedules (through the public API — Compile,
// Connect, Instance.Backend), a recycled instance must replay the fresh
// instance's run schedule-for-schedule: identical per-port sequences,
// Steps, GuardEvals, deadlock state, and error class. The cooperative
// engine (no runtime, no workers) keeps every run synchronous, so the
// comparison is strict even for choice-rich connectors — Close resets
// the choice stream to the seed.
func TestReuseExploreSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer corpus run")
	}
	funcs := reo.Funcs{Filters: gendrv.TestFilters(), Transformers: gendrv.TestXforms()}
	const baseSeed = 2026
	for i := 0; i < 8; i++ {
		seed := explore.RoundSeed(baseSeed, i)
		bc, err := explore.BuildConn(seed, explore.GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := reo.Compile(bc.Conn.Source(), reo.WithFuncs(funcs))
		if err != nil {
			t.Fatalf("seed %d: public compile rejected explorer connector: %v\n%s", seed, err, bc.Conn.Source())
		}
		conn, err := prog.Connector(bc.Conn.Name())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sched := explore.GenerateSchedule(explore.RoundSeed(seed, 1), bc.Ins(), bc.Outs(), 16)
		run := func() *explore.Outcome {
			t.Helper()
			inst, err := conn.Connect(bc.Conn.Lengths(),
				reo.WithSeed(5),
				reo.WithPartitioning(reo.PartitionRegions),
				reo.WithReuse(true))
			if err != nil {
				t.Fatalf("seed %d: connect: %v", seed, err)
			}
			out, err := explore.RunSchedule(inst.Backend(), sched, explore.RunCfg{CloseFn: inst.Close})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return out
		}
		fresh := run()
		for round := 0; round < 2; round++ {
			recycled := run()
			if d := explore.DiffOutcomes(fresh, recycled, "fresh", "recycled", false, false); d != "" {
				t.Errorf("seed %d round %d: recycled run diverged: %s\nconnector:\n%s\nrepro: go test -run '%s' .",
					seed, round, d, bc.Conn.Source(), t.Name())
			}
		}
	}
}
